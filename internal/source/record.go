package source

import (
	"fmt"
	"os"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sensor"
	"github.com/sid-wsn/sid/internal/trace"
)

// Recording tees the sample stream flowing through a pipeline into per-node
// SIDTRACE recordings. Attach one via the runtime's RecordTo config; the
// pipeline calls Init once and then Append for every consumed block, in the
// serial phase of each batch, so recording never perturbs the run.
//
// Replay by index requires contiguous streams: a node that skips batches
// (duty-cycled coarse mode) produces a gap, which Append detects and
// reports from Err, Save and Source.
type Recording struct {
	rate  float64
	scale float64
	pos   []geo.Vec2
	seed  int64
	start []float64 // first recorded sample time per node
	next  []int     // next expected global sample index per node
	data  [][]sensor.Sample
	began []bool
	err   error
}

// Init is called by the pipeline before the first batch. It resets the
// recording to the deployment's geometry and stream parameters.
func (r *Recording) Init(rate, scale float64, positions []geo.Vec2, seed int64) {
	r.rate, r.scale, r.seed = rate, scale, seed
	r.pos = append([]geo.Vec2(nil), positions...)
	n := len(positions)
	r.start = make([]float64, n)
	r.next = make([]int, n)
	r.data = make([][]sensor.Sample, n)
	r.began = make([]bool, n)
	r.err = nil
}

// Append records one consumed block for node, whose first sample has global
// index idx. Blocks must be contiguous per node; a gap marks the recording
// broken (see Err).
func (r *Recording) Append(node, idx int, block []sensor.Sample) {
	if len(block) == 0 {
		return
	}
	if !r.began[node] {
		r.began[node] = true
		r.start[node] = block[0].T
		r.next[node] = idx
	}
	if idx != r.next[node] && r.err == nil {
		r.err = fmt.Errorf("source: node %d stream has a gap at sample %d (expected %d) — "+
			"duty-cycled nodes that skip batches cannot be recorded for replay", node, idx, r.next[node])
	}
	r.next[node] = idx + len(block)
	r.data[node] = append(r.data[node], block...)
}

// Err reports whether the recorded streams are replayable (nil) or broken
// by a gap.
func (r *Recording) Err() error { return r.err }

// Source returns an in-memory replay source over the recorded streams.
func (r *Recording) Source() (*Trace, error) {
	if r.err != nil {
		return nil, r.err
	}
	t, err := TraceFromSamples(r.rate, r.scale, r.data)
	if err != nil {
		return nil, err
	}
	t.pos = append([]geo.Vec2(nil), r.pos...)
	t.seed = r.seed
	return t, nil
}

// Save writes one SIDTRACE file per node (node_000.sidtrc, …) into dir,
// creating it if needed. The result round-trips through OpenTraceDir.
func (r *Recording) Save(dir string) error {
	if r.err != nil {
		return r.err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for node, samples := range r.data {
		h := trace.Header{
			SampleRate: r.rate,
			CountsPerG: r.scale,
			Pos:        r.pos[node],
			StartTime:  r.start[node],
			Seed:       r.seed,
		}
		f, err := os.Create(TraceFile(dir, node))
		if err != nil {
			return err
		}
		if err := trace.Write(f, h, samples); err != nil {
			f.Close()
			return fmt.Errorf("source: node %d: %w", node, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
