package source

import (
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/wake"
)

// indexedSynth builds a spectral deployment on a rows×cols grid with a ship
// wake and a maneuver wake, with the spatial index on or off.
func indexedSynth(t *testing.T, rows, cols int, drift float64, disable bool) *Synthetic {
	t.Helper()
	positions := geo.GridSpec{Rows: rows, Cols: cols, Spacing: 25}.Positions()
	s, err := NewSynthetic(SyntheticConfig{
		Positions:    positions,
		Hs:           0.25,
		Tp:           4.0,
		DriftRadius:  drift,
		Seed:         4242,
		Synthesis:    SynthSpectral,
		DisableIndex: disable,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := wake.NewShip(geo.LineThrough(geo.Vec2{X: -200, Y: 40}, geo.Vec2{X: 400, Y: 60}), 5.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	sh.Time0 = -10
	s.AddSource(wake.Field{Ship: sh})
	m, err := wake.NewManeuver(5, 8, []wake.Waypoint{
		{Pos: geo.Vec2{X: -150, Y: 120}, Speed: 4},
		{Pos: geo.Vec2{X: 100, Y: 100}, Speed: 7},
		{Pos: geo.Vec2{X: 350, Y: 160}, Speed: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.AddSource(wake.ManeuverField{M: m})
	return s
}

// runBlocks drives the source through the pipeline's contract — serial
// PrepareBatch, then every node's Block for the batch — and returns all
// samples flattened per node.
func runBlocks(s *Synthetic, batches, perBatch int) [][]int16 {
	out := make([][]int16, s.NumNodes())
	for b := 0; b < batches; b++ {
		idx := b * perBatch
		t0 := float64(idx) / s.Rate()
		s.PrepareBatch(idx, t0, perBatch)
		for node := 0; node < s.NumNodes(); node++ {
			for _, smp := range s.Block(node, idx, t0, perBatch) {
				out[node] = append(out[node], smp.X, smp.Y, smp.Z)
			}
		}
	}
	return out
}

// TestIndexedSynthesisBitIdentical is the tentpole safety contract: routing
// wakes through the spatial index must not change a single quantized sample
// relative to the unindexed spectral path, with and without buoy drift. The
// index may only skip node-blocks the sensor's own cull would have skipped.
func TestIndexedSynthesisBitIdentical(t *testing.T) {
	for _, drift := range []float64{0, 2} {
		indexed := indexedSynth(t, 8, 8, drift, false)
		plain := indexedSynth(t, 8, 8, drift, true)
		const perBatch, batches = 25, 260 // 130 s at 50 Hz: both wakes cross
		a := runBlocks(indexed, batches, perBatch)
		b := runBlocks(plain, batches, perBatch)
		for node := range a {
			if len(a[node]) != len(b[node]) {
				t.Fatalf("drift %g node %d: %d vs %d samples", drift, node, len(a[node]), len(b[node]))
			}
			for i := range a[node] {
				if a[node][i] != b[node][i] {
					t.Fatalf("drift %g node %d sample %d: indexed %d != unindexed %d",
						drift, node, i, a[node][i], b[node][i])
				}
			}
		}
		st := indexed.SynthesisStats()
		if st.IndexedWakes != 2 {
			t.Fatalf("expected 2 indexed wakes, got %d", st.IndexedWakes)
		}
		if st.IndexNodesOffered == 0 {
			t.Fatalf("index never filtered anything")
		}
		if st.IndexNodeBlocks >= st.IndexNodesOffered {
			t.Fatalf("index selected everything (%d of %d) — no culling value",
				st.IndexNodeBlocks, st.IndexNodesOffered)
		}
		if hr := st.IndexHitRate(); hr <= 0 || hr >= 1 {
			t.Fatalf("implausible index hit rate %g", hr)
		}
		if ps := plain.SynthesisStats(); ps.IndexNodesOffered != 0 || ps.IndexedWakes != 0 {
			t.Fatalf("disabled index reported activity: %+v", ps)
		}
	}
}

// TestUnpreparedBlockMatchesUnindexed pins the direct-caller fallback: Block
// without a PrepareBatch for the same batch idx must carry every indexed
// wake, i.e. behave exactly like the unindexed path.
func TestUnpreparedBlockMatchesUnindexed(t *testing.T) {
	indexed := indexedSynth(t, 4, 4, 0, false)
	plain := indexedSynth(t, 4, 4, 0, true)
	const perBatch, batches = 25, 80
	for b := 0; b < batches; b++ {
		idx := b * perBatch
		t0 := float64(idx) / 50
		for node := 0; node < indexed.NumNodes(); node++ {
			// No PrepareBatch call on either side.
			ba := indexed.Block(node, idx, t0, perBatch)
			bb := plain.Block(node, idx, t0, perBatch)
			for i := range ba {
				if ba[i] != bb[i] {
					t.Fatalf("node %d batch %d sample %d: %+v != %+v", node, b, i, ba[i], bb[i])
				}
			}
		}
	}
}

// TestIndexSelectionIsConservative checks the inclusion that makes indexing
// safe, directly: every node whose sensor-level cull would evaluate the wake
// (bound above threshold at its drifted position) is in the index's
// selection for that batch.
func TestIndexSelectionIsConservative(t *testing.T) {
	s := indexedSynth(t, 10, 10, 2, false)
	const perBatch = 25
	for b := 0; b < 200; b += 5 {
		idx := b * perBatch
		t0 := float64(idx) / 50
		t1 := t0 + float64(perBatch-1)/50
		s.PrepareBatch(idx, t0, perBatch)
		for node := range s.nodes {
			ns := &s.nodes[node]
			inBatch := make(map[interface{}]bool)
			for _, m := range ns.batch {
				inBatch[m] = true
			}
			p0 := ns.sens.Buoy.Position(t0)
			for _, bm := range s.boxed {
				ba, bs := bm.Bounds(p0, t0-0.25, t1+0.25)
				wouldEvaluate := ba*1.15 > s.cull.Accel || bs*1.15 > s.cull.Slope
				if wouldEvaluate && !inBatch[bm] {
					t.Fatalf("batch %d node %d: sensor would evaluate wake %T but index dropped it", b, node, bm)
				}
			}
		}
	}
}
