package source

import (
	"math"
	"os"
	"strings"
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sensor"
)

// stream fabricates a contiguous recorded stream of n samples starting at
// global index start, at the given rate, with recognizable payloads.
func stream(start, n int, rate float64) []sensor.Sample {
	out := make([]sensor.Sample, n)
	for i := range out {
		g := start + i
		out[i] = sensor.Sample{T: float64(g) / rate, X: int16(g), Y: int16(-g), Z: int16(1000 + g%7)}
	}
	return out
}

func TestTraceBlockRecomputesTimes(t *testing.T) {
	const rate = 50.0
	tr, err := TraceFromSamples(rate, 1024, [][]sensor.Sample{stream(0, 200, rate)})
	if err != nil {
		t.Fatal(err)
	}
	// The pipeline's batch clock, not the stored times, must set T: ask for
	// a batch with a deliberately shifted t0 and expect t0 + i/rate exactly.
	const t0 = 123.456
	blk := tr.Block(0, 100, t0, 50)
	if len(blk) != 50 {
		t.Fatalf("Block returned %d samples, want 50", len(blk))
	}
	for i, s := range blk {
		if want := t0 + float64(i)/rate; s.T != want {
			t.Fatalf("sample %d: T = %v, want exactly %v", i, s.T, want)
		}
		if s.X != int16(100+i) {
			t.Fatalf("sample %d: payload X = %d, want %d (wrong global index served)", i, s.X, 100+i)
		}
	}
	// Past the end of the recording the node goes silent.
	if blk := tr.Block(0, 200, 4, 50); blk != nil {
		t.Fatalf("Block past EOF returned %d samples, want nil", len(blk))
	}
}

func TestTraceMidRunStart(t *testing.T) {
	const rate = 50.0
	// A stream whose first sample time is 2 s replays at global index 100,
	// not 0: earlier batches are silent, the overlap batch is partial.
	tr, err := TraceFromSamples(rate, 1024, [][]sensor.Sample{stream(100, 100, rate)})
	if err != nil {
		t.Fatal(err)
	}
	if blk := tr.Block(0, 0, 0, 50); blk != nil {
		t.Fatalf("pre-start batch returned %d samples, want nil", len(blk))
	}
	blk := tr.Block(0, 75, 1.5, 50)
	if len(blk) != 25 {
		t.Fatalf("overlap batch returned %d samples, want 25", len(blk))
	}
	if blk[0].X != 100 {
		t.Fatalf("overlap batch starts at payload %d, want 100", blk[0].X)
	}
	if want := 1.5 + 25.0/rate; blk[0].T != want {
		t.Fatalf("overlap batch first T = %v, want %v", blk[0].T, want)
	}
}

func TestTraceFromSamplesRejectsBadParams(t *testing.T) {
	if _, err := TraceFromSamples(0, 1024, nil); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := TraceFromSamples(50, -1, nil); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestRecordingGapDetected(t *testing.T) {
	var rec Recording
	rec.Init(50, 1024, []geo.Vec2{{}}, 7)
	rec.Append(0, 0, stream(0, 50, 50))
	rec.Append(0, 100, stream(100, 50, 50)) // skipped [50,100): duty-cycle gap
	if rec.Err() == nil {
		t.Fatal("gap not detected")
	}
	if !strings.Contains(rec.Err().Error(), "gap") {
		t.Fatalf("gap error %q does not mention the gap", rec.Err())
	}
	if _, err := rec.Source(); err == nil {
		t.Fatal("Source succeeded on a gapped recording")
	}
	if err := rec.Save(t.TempDir()); err == nil {
		t.Fatal("Save succeeded on a gapped recording")
	}
}

func TestRecordingRoundTripDisk(t *testing.T) {
	const rate, scale = 50.0, 1024.0
	pos := []geo.Vec2{{X: 10, Y: 20}, {X: 30, Y: 40}}
	var rec Recording
	rec.Init(rate, scale, pos, 42)
	for idx := 0; idx < 150; idx += 50 {
		rec.Append(0, idx, stream(idx, 50, rate))
		rec.Append(1, idx, stream(idx, 50, rate))
	}
	dir := t.TempDir()
	if err := rec.Save(dir); err != nil {
		t.Fatal(err)
	}
	tr, err := OpenTraceDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Rate() != rate || tr.Scale() != scale || tr.Seed() != 42 || tr.NumNodes() != 2 {
		t.Fatalf("header round-trip: rate %g scale %g seed %d nodes %d",
			tr.Rate(), tr.Scale(), tr.Seed(), tr.NumNodes())
	}
	got := tr.Positions()
	for i := range pos {
		if math.Abs(got[i].X-pos[i].X) > 1e-9 || math.Abs(got[i].Y-pos[i].Y) > 1e-9 {
			t.Fatalf("node %d position %v, want %v", i, got[i], pos[i])
		}
	}
	// Streamed blocks match the in-memory source sample for sample, and the
	// pending window stays bounded by one decode chunk plus one batch.
	mem, err := rec.Source()
	if err != nil {
		t.Fatal(err)
	}
	const batch = 50
	for idx := 0; idx < 150; idx += batch {
		t0 := float64(idx) / rate
		for node := 0; node < 2; node++ {
			a := append([]sensor.Sample(nil), tr.Block(node, idx, t0, batch)...)
			b := mem.Block(node, idx, t0, batch)
			if len(a) != len(b) {
				t.Fatalf("node %d idx %d: disk %d vs mem %d samples", node, idx, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("node %d idx %d sample %d: disk %+v vs mem %+v", node, idx, i, a[i], b[i])
				}
			}
			if pend := len(tr.nodes[node].pending); pend > decodeChunk+batch {
				t.Fatalf("node %d pending window %d exceeds decodeChunk+batch = %d",
					node, pend, decodeChunk+batch)
			}
		}
	}
}

func TestOpenTraceDirErrors(t *testing.T) {
	if _, err := OpenTraceDir(t.TempDir()); err == nil {
		t.Fatal("empty directory accepted")
	}
	// Two nodes with mismatched rates must be rejected.
	dir := t.TempDir()
	var a Recording
	a.Init(50, 1024, []geo.Vec2{{}}, 1)
	a.Append(0, 0, stream(0, 10, 50))
	if err := a.Save(dir); err != nil {
		t.Fatal(err)
	}
	var b Recording
	b.Init(100, 1024, []geo.Vec2{{}}, 1)
	b.Append(0, 0, stream(0, 10, 100))
	sub := t.TempDir()
	if err := b.Save(sub); err != nil {
		t.Fatal(err)
	}
	// A single Recording can't hold two rates, so graft b's trace into dir
	// as node_001 by copying the file.
	data, err := os.ReadFile(TraceFile(sub, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(TraceFile(dir, 1), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTraceDir(dir); err == nil || !strings.Contains(err.Error(), "differs") {
		t.Fatalf("mismatched rates accepted (err = %v)", err)
	}
}
