package source

import (
	"fmt"

	"github.com/sid-wsn/sid/internal/sensor"
)

// Push is a Source fed by an external producer — the detection server's
// ingest path. A producer Appends per-node sample runs (one chunk at a
// time), then advances the consuming pipeline far enough to drain them;
// Block serves the buffered samples by global index with times recomputed
// from the batch clock, exactly like a Trace replay, so a pushed stream is
// bit-identical through the pipeline to the synthesis that produced it.
//
// The feed-then-run discipline is the memory bound: each Append is followed
// by a Run covering it, Block drops consumed samples, and the pending
// window never holds more than one chunk plus one batch. Push is not safe
// for Append concurrent with Block — the producer and the pipeline must
// alternate (the serving layer's per-tenant loop guarantees this); Block
// calls on distinct nodes may be concurrent, per the Source contract.
type Push struct {
	rate  float64
	scale float64
	nodes []pushNode
}

// pushNode is one node's pending window. Like traceNode, pendIdx is the
// global sample index of pending[0]; began latches once the first samples
// arrive so contiguity is only enforced within a stream.
type pushNode struct {
	pending []sensor.Sample
	pendIdx int
	began   bool
	out     []sensor.Sample
}

// NewPush returns an empty push source serving numNodes node streams.
func NewPush(rate, scale float64, numNodes int) (*Push, error) {
	if rate <= 0 || scale <= 0 {
		return nil, fmt.Errorf("source: push rate and scale must be positive, got %g, %g", rate, scale)
	}
	if numNodes <= 0 {
		return nil, fmt.Errorf("source: push needs at least one node stream, got %d", numNodes)
	}
	return &Push{rate: rate, scale: scale, nodes: make([]pushNode, numNodes)}, nil
}

// Rate implements Source.
func (p *Push) Rate() float64 { return p.rate }

// Scale implements Source.
func (p *Push) Scale() float64 { return p.scale }

// NumNodes implements Source.
func (p *Push) NumNodes() int { return len(p.nodes) }

// Append feeds one node's next samples. The first append pins the stream's
// global start index from its first sample time (round(T·rate), as
// TraceFromSamples does); every later append must continue exactly where
// the previous one ended — a gap or overlap is an error, because replay by
// index would silently misalign onsets. An empty append is a no-op (the
// node is silent for this chunk).
func (p *Push) Append(node int, samples []sensor.Sample) error {
	if node < 0 || node >= len(p.nodes) {
		return fmt.Errorf("source: push has no node %d", node)
	}
	if len(samples) == 0 {
		return nil
	}
	ns := &p.nodes[node]
	idx := globalIndex(samples[0].T, p.rate)
	if !ns.began {
		ns.began = true
		ns.pendIdx = idx
	} else if want := ns.pendIdx + len(ns.pending); idx != want {
		return fmt.Errorf("source: push node %d stream has a gap at sample %d (expected %d)", node, idx, want)
	}
	ns.pending = append(ns.pending, samples...)
	return nil
}

// Pending returns the total buffered (not yet consumed) sample count across
// all nodes — the serving layer's queue-depth gauge.
func (p *Push) Pending() int {
	total := 0
	for i := range p.nodes {
		total += len(p.nodes[i].pending)
	}
	return total
}

// Block implements Source: serve the buffered samples with global indices
// in [idx, idx+n), times recomputed as t0 + i/rate (the sensor.SampleBlock
// formula — what makes pushed onsets bit-identical to the originating
// synthesis). Consumed and skipped-over samples are dropped, keeping the
// pending window bounded.
func (p *Push) Block(node, idx int, t0 float64, n int) []sensor.Sample {
	ns := &p.nodes[node]
	if drop := idx - ns.pendIdx; drop > 0 {
		if drop > len(ns.pending) {
			drop = len(ns.pending)
		}
		ns.pending = ns.pending[drop:]
		ns.pendIdx += drop
	}
	ns.out = ns.out[:0]
	for j := ns.pendIdx; j < idx+n && j-ns.pendIdx < len(ns.pending); j++ {
		if j < idx {
			continue
		}
		s := ns.pending[j-ns.pendIdx]
		s.T = t0 + float64(j-idx)/p.rate
		ns.out = append(ns.out, s)
	}
	if len(ns.out) == 0 {
		return nil
	}
	return ns.out
}
