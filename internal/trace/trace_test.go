package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sensor"
)

func sampleTrace() (Header, []sensor.Sample) {
	h := Header{
		SampleRate: 50,
		CountsPerG: 1024,
		Pos:        geo.Vec2{X: 25, Y: 50},
		StartTime:  100,
		Seed:       42,
	}
	samples := []sensor.Sample{
		{T: 100.00, X: 1, Y: -2, Z: 1024},
		{T: 100.02, X: 15, Y: 3, Z: 1100},
		{T: 100.04, X: -7, Y: 0, Z: 950},
	}
	return h, samples
}

func TestBinaryRoundTrip(t *testing.T) {
	h, samples := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, h, samples); err != nil {
		t.Fatal(err)
	}
	h2, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.SampleRate != h.SampleRate || h2.CountsPerG != h.CountsPerG ||
		h2.Pos != h.Pos || h2.StartTime != h.StartTime || h2.Seed != h.Seed {
		t.Errorf("header mismatch: %+v vs %+v", h2, h)
	}
	if h2.NumSamples != len(samples) {
		t.Errorf("NumSamples = %d", h2.NumSamples)
	}
	for i := range samples {
		if got[i].X != samples[i].X || got[i].Y != samples[i].Y || got[i].Z != samples[i].Z {
			t.Errorf("sample %d = %+v, want %+v", i, got[i], samples[i])
		}
		if math.Abs(got[i].T-samples[i].T) > 1e-9 {
			t.Errorf("sample %d time = %v, want %v", i, got[i].T, samples[i].T)
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(xs []int16, seed int64) bool {
		h := Header{SampleRate: 50, CountsPerG: 1024, StartTime: 7, Seed: seed}
		samples := make([]sensor.Sample, len(xs))
		for i, x := range xs {
			samples[i] = sensor.Sample{X: x, Y: -x, Z: x / 2}
		}
		var buf bytes.Buffer
		if err := Write(&buf, h, samples); err != nil {
			return false
		}
		_, got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(samples) {
			return false
		}
		for i := range got {
			if got[i].X != samples[i].X || got[i].Y != samples[i].Y || got[i].Z != samples[i].Z {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, _, err := Read(bytes.NewReader([]byte("NOTATRACEFILE..."))); err == nil {
		t.Error("expected bad-magic error")
	}
	if _, _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	h, samples := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, h, samples); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{9, 20, len(data) - 3} {
		if _, _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{SampleRate: 0, CountsPerG: 1024}, nil); err == nil {
		t.Error("expected error for zero rate")
	}
	if err := Write(&buf, Header{SampleRate: 50, CountsPerG: 0}, nil); err == nil {
		t.Error("expected error for zero scale")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	h, samples := sampleTrace()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, h, samples); err != nil {
		t.Fatal(err)
	}
	h2, got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.SampleRate != 50 || h2.CountsPerG != 1024 || h2.Seed != 42 ||
		h2.Pos != (geo.Vec2{X: 25, Y: 50}) || h2.StartTime != 100 {
		t.Errorf("CSV header = %+v", h2)
	}
	if len(got) != len(samples) {
		t.Fatalf("samples = %d", len(got))
	}
	for i := range samples {
		if got[i].X != samples[i].X || got[i].Z != samples[i].Z {
			t.Errorf("sample %d = %+v", i, got[i])
		}
	}
}

func TestCSVRejectsMalformed(t *testing.T) {
	bad := []string{
		"# sid-trace rate=50 countsPerG=1024\n1,2,3\n",         // 3 fields
		"# sid-trace rate=50 countsPerG=1024\nx,2,3,4\n",       // bad float
		"# sid-trace rate=50 countsPerG=1024\n1.0,a,3,4\n",     // bad int
		"# sid-trace rate=50 countsPerG=1024\n1.0,99999,3,4\n", // int16 overflow
		"# sid-trace rate=bogus countsPerG=1024\n",             // bad header
		"1.0,1,2,3\n", // no header
	}
	for i, s := range bad {
		if _, _, err := ReadCSV(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestCSVSkipsBlankAndColumnHeader(t *testing.T) {
	in := "# sid-trace rate=50 countsPerG=1024 posX=1 posY=2 start=0 seed=9\n\nt,x,y,z\n0.00,1,2,3\n"
	h, samples, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || h.Seed != 9 {
		t.Errorf("h=%+v samples=%v", h, samples)
	}
}
