// Package trace defines the accelerometer trace format the project uses in
// place of the paper's proprietary sea-trial recordings: a self-describing
// binary container (and a CSV form for interoperability) holding one
// buoy's three-axis samples plus the metadata needed to replay them
// through the detection pipeline — sample rate, sensor scale, deployment
// position, and the generating scenario's seed for provenance.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sensor"
)

// Magic identifies the binary trace format ("SIDTRACE", 8 bytes).
var Magic = [8]byte{'S', 'I', 'D', 'T', 'R', 'C', '0', '1'}

// Header describes a recording.
type Header struct {
	// SampleRate in Hz.
	SampleRate float64
	// CountsPerG is the ADC scale.
	CountsPerG float64
	// Pos is the buoy's assigned position.
	Pos geo.Vec2
	// StartTime is the recording's first sample time in seconds.
	StartTime float64
	// Seed is the generating scenario's seed (0 for real data).
	Seed int64
	// NumSamples is the sample count that follows.
	NumSamples int
}

func (h Header) validate() error {
	if h.SampleRate <= 0 {
		return fmt.Errorf("trace: sample rate must be positive, got %g", h.SampleRate)
	}
	if h.CountsPerG <= 0 {
		return fmt.Errorf("trace: counts-per-g must be positive, got %g", h.CountsPerG)
	}
	if h.NumSamples < 0 {
		return fmt.Errorf("trace: negative sample count %d", h.NumSamples)
	}
	return nil
}

// Write serializes a trace: header followed by x/y/z int16 triplets.
// Sample times are implicit (StartTime + i/SampleRate); the samples' own
// T fields are not stored.
func Write(w io.Writer, h Header, samples []sensor.Sample) error {
	h.NumSamples = len(samples)
	if err := h.validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(Magic[:]); err != nil {
		return err
	}
	fields := []interface{}{
		h.SampleRate, h.CountsPerG, h.Pos.X, h.Pos.Y, h.StartTime, h.Seed, int64(h.NumSamples),
	}
	for _, f := range fields {
		if err := binary.Write(bw, binary.LittleEndian, f); err != nil {
			return err
		}
	}
	for _, s := range samples {
		if err := binary.Write(bw, binary.LittleEndian, [3]int16{s.X, s.Y, s.Z}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decoder reads a binary trace incrementally: the header up front, then
// samples in caller-sized blocks. It is the streaming counterpart of Read —
// a replay pipeline can pull one sensing batch at a time and never hold a
// full recording in memory.
type Decoder struct {
	br   *bufio.Reader
	h    Header
	read int // samples decoded so far
}

// NewDecoder consumes the stream's magic and header and returns a decoder
// positioned at the first sample.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != Magic {
		return nil, errors.New("trace: bad magic (not a SID trace)")
	}
	var h Header
	var n int64
	for _, f := range []interface{}{
		&h.SampleRate, &h.CountsPerG, &h.Pos.X, &h.Pos.Y, &h.StartTime, &h.Seed, &n,
	} {
		if err := binary.Read(br, binary.LittleEndian, f); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
	}
	h.NumSamples = int(n)
	if err := h.validate(); err != nil {
		return nil, err
	}
	const maxSamples = 1 << 28 // guard against corrupted headers
	if h.NumSamples > maxSamples {
		return nil, fmt.Errorf("trace: implausible sample count %d", h.NumSamples)
	}
	return &Decoder{br: br, h: h}, nil
}

// Header returns the recording's metadata.
func (d *Decoder) Header() Header { return d.h }

// Decoded returns how many samples have been decoded so far.
func (d *Decoder) Decoded() int { return d.read }

// Next decodes up to len(dst) samples into dst and returns how many were
// filled. Sample times are reconstructed as StartTime + i/SampleRate. At the
// end of the recording it returns 0, io.EOF; a short file surfaces as
// io.ErrUnexpectedEOF.
func (d *Decoder) Next(dst []sensor.Sample) (int, error) {
	remain := d.h.NumSamples - d.read
	if remain <= 0 {
		return 0, io.EOF
	}
	if len(dst) < remain {
		remain = len(dst)
	}
	for i := 0; i < remain; i++ {
		var triple [3]int16
		if err := binary.Read(d.br, binary.LittleEndian, &triple); err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return i, fmt.Errorf("trace: reading sample %d: %w", d.read, err)
		}
		dst[i] = sensor.Sample{
			T: d.h.StartTime + float64(d.read)/d.h.SampleRate,
			X: triple[0], Y: triple[1], Z: triple[2],
		}
		d.read++
	}
	return remain, nil
}

// Read deserializes a trace written by Write, reconstructing sample times.
func Read(r io.Reader) (Header, []sensor.Sample, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return Header{}, nil, err
	}
	samples := make([]sensor.Sample, d.h.NumSamples)
	if len(samples) > 0 {
		if _, err := d.Next(samples); err != nil {
			return Header{}, nil, err
		}
	}
	return d.h, samples, nil
}

// WriteCSV emits the trace as CSV with a comment header, one row per
// sample: t,x,y,z.
func WriteCSV(w io.Writer, h Header, samples []sensor.Sample) error {
	h.NumSamples = len(samples)
	if err := h.validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	_, err := fmt.Fprintf(bw, "# sid-trace rate=%g countsPerG=%g posX=%g posY=%g start=%g seed=%d\n",
		h.SampleRate, h.CountsPerG, h.Pos.X, h.Pos.Y, h.StartTime, h.Seed)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, "t,x,y,z"); err != nil {
		return err
	}
	for _, s := range samples {
		if _, err := fmt.Fprintf(bw, "%.4f,%d,%d,%d\n", s.T, s.X, s.Y, s.Z); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the CSV form produced by WriteCSV.
func ReadCSV(r io.Reader) (Header, []sensor.Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var h Header
	var samples []sensor.Sample
	lineNo := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		lineNo++
		switch {
		case line == "" || line == "t,x,y,z":
			continue
		case strings.HasPrefix(line, "#"):
			if err := parseCSVHeader(line, &h); err != nil {
				return Header{}, nil, err
			}
		default:
			parts := strings.Split(line, ",")
			if len(parts) != 4 {
				return Header{}, nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", lineNo, len(parts))
			}
			t, err := strconv.ParseFloat(parts[0], 64)
			if err != nil {
				return Header{}, nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			var xyz [3]int16
			for i := 0; i < 3; i++ {
				v, err := strconv.ParseInt(parts[i+1], 10, 16)
				if err != nil {
					return Header{}, nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
				}
				xyz[i] = int16(v)
			}
			samples = append(samples, sensor.Sample{T: t, X: xyz[0], Y: xyz[1], Z: xyz[2]})
		}
	}
	if err := sc.Err(); err != nil {
		return Header{}, nil, err
	}
	h.NumSamples = len(samples)
	if err := h.validate(); err != nil {
		return Header{}, nil, err
	}
	return h, samples, nil
}

func parseCSVHeader(line string, h *Header) error {
	for _, tok := range strings.Fields(line) {
		kv := strings.SplitN(tok, "=", 2)
		if len(kv) != 2 {
			continue
		}
		var err error
		switch kv[0] {
		case "rate":
			h.SampleRate, err = strconv.ParseFloat(kv[1], 64)
		case "countsPerG":
			h.CountsPerG, err = strconv.ParseFloat(kv[1], 64)
		case "posX":
			h.Pos.X, err = strconv.ParseFloat(kv[1], 64)
		case "posY":
			h.Pos.Y, err = strconv.ParseFloat(kv[1], 64)
		case "start":
			h.StartTime, err = strconv.ParseFloat(kv[1], 64)
		case "seed":
			h.Seed, err = strconv.ParseInt(kv[1], 10, 64)
		}
		if err != nil {
			return fmt.Errorf("trace: header field %s: %w", kv[0], err)
		}
	}
	return nil
}
