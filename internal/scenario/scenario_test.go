package scenario

import (
	"math"
	"reflect"
	"testing"
)

func corpusSpec(t *testing.T, name string) Spec {
	t.Helper()
	for _, s := range Corpus() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no corpus scenario %q", name)
	return Spec{}
}

func TestSpecValidation(t *testing.T) {
	if _, err := Run(Spec{Duration: 100}); err == nil {
		t.Error("expected error for unnamed spec")
	}
	if _, err := Run(Spec{Name: "x"}); err == nil {
		t.Error("expected error for zero duration")
	}
	bad := Spec{Name: "x", Duration: 100, Ships: []ShipSpec{{
		Name: "s", Waypoints: []WaypointSpec{{0, 0, 10}},
	}}}
	if _, err := Run(bad); err == nil {
		t.Error("expected error for single-waypoint ship")
	}
}

func TestTruthMatchesSpec(t *testing.T) {
	spec := corpusSpec(t, "single-10kn")
	cfg, err := spec.compile()
	if err != nil {
		t.Fatal(err)
	}
	ms, err := spec.maneuvers()
	if err != nil {
		t.Fatal(err)
	}
	tr := truth(spec, cfg, ms[0])
	if math.Abs(tr.TrueSpeedKn-10) > 1e-9 {
		t.Errorf("TrueSpeedKn = %v, want 10", tr.TrueSpeedKn)
	}
	if math.Abs(tr.TrueHeadingDeg-90) > 1e-9 {
		t.Errorf("TrueHeadingDeg = %v, want 90", tr.TrueHeadingDeg)
	}
	if tr.CoveredNodes != 20 {
		t.Errorf("CoveredNodes = %d, want 20 (ship crosses the whole grid)", tr.CoveredNodes)
	}
	if tr.SweepStart >= tr.SweepEnd {
		t.Errorf("sweep window [%v, %v] not increasing", tr.SweepStart, tr.SweepEnd)
	}
	if tr.SweepStart < spec.Ships[0].EnterAt {
		t.Errorf("sweep starts %v, before the ship enters at %v", tr.SweepStart, spec.Ships[0].EnterAt)
	}
}

// TestTwoCrossingDeterministicAndAttributed is the engine's core contract:
// the two-ship crossing scenario must produce bit-identical results for any
// worker count, and the per-ship scoring must attribute a confirmation to
// BOTH vessels with no false confirms.
func TestTwoCrossingDeterministicAndAttributed(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario run is slow")
	}
	spec := corpusSpec(t, "two-crossing")
	spec.Workers = 1
	res1, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workers = 3
	res3, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1, res3) {
		t.Errorf("results differ between Workers=1 and Workers=3:\n%+v\nvs\n%+v", res1, res3)
	}
	if res1.FalseConfirms != 0 {
		t.Errorf("FalseConfirms = %d, want 0", res1.FalseConfirms)
	}
	if len(res1.Ships) != 2 {
		t.Fatalf("got %d ship results, want 2", len(res1.Ships))
	}
	for _, sh := range res1.Ships {
		if !sh.Detected || sh.Confirms < 1 {
			t.Errorf("ship %q: detected=%v confirms=%d, want a confirmed detection",
				sh.Name, sh.Detected, sh.Confirms)
		}
		if !sh.HasSpeed {
			t.Errorf("ship %q: no speed estimate", sh.Name)
			continue
		}
		if sh.SpeedErrFrac > 0.5 {
			t.Errorf("ship %q: speed estimate %v kn vs true %v kn (err %.0f%%)",
				sh.Name, sh.SpeedKn, sh.TrueSpeedKn, 100*sh.SpeedErrFrac)
		}
	}
}
