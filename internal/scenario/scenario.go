// Package scenario is a deterministic multi-vessel trial engine on top of
// the SID runtime. A trial is a declarative Spec — grid, sea state, N ships
// with waypoint trajectories (piecewise speeds, acceleration segments,
// staggered entries), radio impairments, and a node-failure plan — compiled
// onto the discrete-event scheduler. Wake fields of concurrent vessels
// superpose linearly through the sensor model, and each vessel's kinematic
// ground truth is kept alongside so the run's detections and speed/heading
// estimates are attributed and scored per ship (Result / ShipResult).
//
// The package also carries the golden-trace regression corpus: Corpus()
// enumerates canonical scenarios whose per-node report streams and final
// metrics are committed under testdata/golden and checked by go test with
// tolerance bands (see golden.go and docs/SCENARIOS.md).
package scenario

import (
	"fmt"

	"github.com/sid-wsn/sid/internal/adversary"
	"github.com/sid-wsn/sid/internal/fault"
	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/obs"
	"github.com/sid-wsn/sid/internal/sid"
	"github.com/sid-wsn/sid/internal/source"
	"github.com/sid-wsn/sid/internal/wake"
	"github.com/sid-wsn/sid/internal/wsn"
)

// WaypointSpec is one trajectory vertex: a position in grid coordinates
// (meters; the grid origin is node (0,0), rows advance along +Y) and the
// vessel speed there in knots. Speeds between vertices ramp linearly in
// time (uniform acceleration per leg).
type WaypointSpec struct {
	X, Y    float64
	SpeedKn float64
}

// ShipSpec is one vessel of a trial.
type ShipSpec struct {
	// Name labels the vessel in results and golden files.
	Name string
	// EnterAt is the simulation time the vessel is at its first waypoint.
	EnterAt float64
	// LengthM is the waterline hull length; 0 defaults to 12 m (the
	// paper's small fishing boat).
	LengthM float64
	// WaveCoeff overrides the wave-making coefficient when positive.
	WaveCoeff float64
	// Waypoints is the trajectory (at least two points).
	Waypoints []WaypointSpec
}

// Spec declares one trial. The zero value of every field falls back to the
// sid.DefaultConfig value, so a Spec only states what a scenario is about.
type Spec struct {
	// Name identifies the scenario (and its golden file).
	Name string
	// Rows, Cols, SpacingM shape the buoy grid (default 4×5 at 25 m).
	Rows, Cols int
	SpacingM   float64
	// Hs, Tp parametrize the ambient sea (default 0.25 m, 4 s).
	Hs, Tp float64
	// Duration is the simulated run length in seconds. Required.
	Duration float64
	// Seed drives every random stream of the trial.
	Seed int64
	// Workers bounds the synthesis goroutines (results are bit-identical
	// for any value; see sid.Config.Workers).
	Workers int
	// PacketLoss overrides the radio frame-loss probability when positive.
	PacketLoss float64
	// Reliable enables the per-hop ACK/ARQ transport.
	Reliable bool
	// Failover enables cluster-head failover.
	Failover bool
	// CollectWindow overrides the head's collection window when positive.
	CollectWindow float64
	// MinReports overrides the cluster cancellation threshold when positive.
	MinReports int
	// Spectral switches the synthetic field to FFT-based spectral block
	// synthesis (source.SynthSpectral); false keeps the exact phasor
	// reference path. Golden traces are recorded on the phasor path; the
	// spectral path matches it within one ADC count per sample (see
	// docs/SYNTHESIS.md). Ignored on replay runs.
	Spectral bool
	// Ships are the intruding vessels (may be empty: a quiet-sea trial).
	Ships []ShipSpec
	// Faults is a deterministic fault plan applied at construction.
	Faults fault.Plan
	// Adversary is a deterministic attack plan (byzantine report
	// injection, smooth clock spoofing) applied at construction.
	Adversary adversary.Plan
	// Defense enables the head-side defense layer with its default
	// settings (freshness gating, trimmed evaluation, suspicion and
	// quarantine, robust speed fit).
	Defense bool
}

// compile lowers the spec onto a sid.Config.
func (s Spec) compile() (sid.Config, error) {
	if s.Name == "" {
		return sid.Config{}, fmt.Errorf("scenario: Name is required")
	}
	if s.Duration <= 0 {
		return sid.Config{}, fmt.Errorf("scenario %q: Duration must be positive, got %g", s.Name, s.Duration)
	}
	cfg := sid.DefaultConfig()
	if s.Rows > 0 {
		cfg.Grid.Rows = s.Rows
	}
	if s.Cols > 0 {
		cfg.Grid.Cols = s.Cols
	}
	if s.SpacingM > 0 {
		cfg.Grid.Spacing = s.SpacingM
	}
	if s.Hs > 0 {
		cfg.Hs = s.Hs
	}
	if s.Tp > 0 {
		cfg.Tp = s.Tp
	}
	if s.CollectWindow > 0 {
		cfg.CollectWindow = s.CollectWindow
	}
	if s.MinReports > 0 {
		cfg.MinReports = s.MinReports
	}
	if s.PacketLoss > 0 {
		cfg.Radio.LossProb = s.PacketLoss
	}
	if s.Reliable {
		cfg.Radio.Reliable = wsn.DefaultReliableConfig()
	}
	if s.Failover {
		cfg.Failover = sid.DefaultFailoverConfig()
	}
	cfg.Faults = s.Faults
	cfg.Adversary = s.Adversary
	if s.Defense {
		cfg.Defense = sid.DefaultDefenseConfig()
	}
	cfg.Workers = s.Workers
	if s.Spectral {
		cfg.Synthesis = source.SynthSpectral
	}
	cfg.Seed = s.Seed
	return cfg, nil
}

// maneuvers builds the per-ship kinematic models.
func (s Spec) maneuvers() ([]*wake.Maneuver, error) {
	out := make([]*wake.Maneuver, 0, len(s.Ships))
	for i, sh := range s.Ships {
		length := sh.LengthM
		if length == 0 {
			length = 12
		}
		wps := make([]wake.Waypoint, len(sh.Waypoints))
		for j, wp := range sh.Waypoints {
			wps[j] = wake.Waypoint{
				Pos:   geo.Vec2{X: wp.X, Y: wp.Y},
				Speed: geo.Knots(wp.SpeedKn),
			}
		}
		m, err := wake.NewManeuver(sh.EnterAt, length, wps)
		if err != nil {
			return nil, fmt.Errorf("scenario %q ship %d (%s): %w", s.Name, i, sh.Name, err)
		}
		if sh.WaveCoeff > 0 {
			m.WaveCoeff = sh.WaveCoeff
		}
		out = append(out, m)
	}
	return out, nil
}

// Run executes the trial and scores it per vessel. Construction failures
// (bad spec, bad trajectory, bad fault plan) are returned as errors, never
// absorbed into the result.
func Run(spec Spec) (*Result, error) {
	return RunWithCollector(spec, nil)
}

// RunWithCollector is Run with an observability collector attached to the
// trial's runtime: protocol counters land in its registry, and when a
// journal is attached every pipeline event is recorded against simulation
// time. col may be nil (plain Run). Attaching a collector never changes the
// trial's outcome — the journal is written from the scheduler's serial
// phases only, so it is also byte-identical across Workers values.
func RunWithCollector(spec Spec, col *obs.Collector) (*Result, error) {
	return runWith(spec, col, nil, nil)
}

// Record runs the trial while teeing every node's sample stream into a
// SIDTRACE recording. The run itself is unperturbed — the returned Result
// is bit-identical to RunWithCollector at the same spec — and the
// recording replays through Replay (in memory via Recording.Source, or
// after a Save/OpenTraceDir disk round-trip).
func Record(spec Spec, col *obs.Collector) (*Result, *source.Recording, error) {
	rec := &source.Recording{}
	res, err := runWith(spec, col, nil, rec)
	if err != nil {
		return nil, nil, err
	}
	if err := rec.Err(); err != nil {
		return nil, nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	return res, rec, nil
}

// Replay runs the trial's detection stack against a replay source instead
// of the synthetic field: same spec (protocol parameters, radio, seed —
// which drives the radio/clock streams the replay still needs), but the
// samples come from src and no wake sources are synthesized. Scoring still
// uses the spec's analytic ship trajectories as ground truth, so a replay
// of a recorded run scores identically to the original.
func Replay(spec Spec, src source.Source, col *obs.Collector) (*Result, error) {
	return runWith(spec, col, src, nil)
}

// runWith compiles and executes one trial: src overrides the synthetic
// field when non-nil (replay), rec tees the sample stream when non-nil
// (record).
func runWith(spec Spec, col *obs.Collector, src source.Source, rec *source.Recording) (*Result, error) {
	cfg, err := spec.compile()
	if err != nil {
		return nil, err
	}
	cfg.Obs = col
	cfg.Source = src
	cfg.RecordTo = rec
	ships, err := spec.maneuvers()
	if err != nil {
		return nil, err
	}
	rt, err := sid.NewRuntime(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	if src == nil {
		// Synthetic run: superpose the vessels' wake fields. A replay's
		// samples already contain the recorded wakes.
		for _, m := range ships {
			rt.AddSource(wake.ManeuverField{M: m})
		}
	}
	if err := rt.Run(spec.Duration); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}
	return score(spec, cfg, rt, ships), nil
}
