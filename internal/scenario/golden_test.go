package scenario

import (
	"path/filepath"
	"testing"
)

// TestGoldenCorpus replays every corpus scenario and checks the result
// against the committed golden file. Counts and booleans must match
// exactly; float metrics must stay inside the tolerance bands (golden.go).
// After an intentional behaviour change, refresh with
//
//	go run ./cmd/sidbench -exp scenarios -update
//
// and review the golden diff like any other code change.
func TestGoldenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus replay is slow")
	}
	dir := filepath.Join("testdata", "golden")
	for _, spec := range Corpus() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			want, err := LoadGolden(dir, spec.Name)
			if err != nil {
				t.Fatalf("missing golden (run sidbench -exp scenarios -update): %v", err)
			}
			got, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, viol := range Diff(want, got) {
				t.Errorf("drift: %s", viol)
			}
		})
	}
}
