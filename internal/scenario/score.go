package scenario

import (
	"math"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sid"
	"github.com/sid-wsn/sid/internal/wake"
)

// attributionSlack is how far (seconds) outside a ship's wake-sweep window
// a confirmation's mean onset may fall and still be credited to that ship.
// It absorbs detection latency (the Δt anomaly windows), clock-sync offsets
// and the head's report deduplication; confirmations further out count as
// false confirms.
const attributionSlack = 45.0

// TraceReport is one node-level detection of the committed golden trace,
// with short JSON keys to keep the files compact. N is the node ID, T the
// true detection time, O the reported onset (node-local clock), E the
// reported wake energy.
type TraceReport struct {
	N int     `json:"n"`
	T float64 `json:"t"`
	O float64 `json:"o"`
	E float64 `json:"e"`
}

// ShipResult scores one vessel of a trial against its kinematic ground
// truth.
type ShipResult struct {
	Name string `json:"name"`

	// Ground truth, derived from the maneuver over the node anchors it
	// covers within the trial duration.
	SweepStart     float64 `json:"sweep_start"`
	SweepEnd       float64 `json:"sweep_end"`
	TrueSpeedKn    float64 `json:"true_speed_kn"`
	TrueHeadingDeg float64 `json:"true_heading_deg"`
	CoveredNodes   int     `json:"covered_nodes"`

	// Detection outcome: confirmations attributed to this vessel.
	Detected  bool    `json:"detected"`
	Confirms  int     `json:"confirms"`
	BestC     float64 `json:"best_c"`
	MeanOnset float64 `json:"mean_onset"`

	// Speed/heading estimate of the best attributed confirmation (when the
	// four-node condition was met).
	HasSpeed      bool    `json:"has_speed"`
	SpeedKn       float64 `json:"speed_kn,omitempty"`
	HeadingDeg    float64 `json:"heading_deg,omitempty"`
	SpeedErrFrac  float64 `json:"speed_err_frac,omitempty"`
	HeadingErrDeg float64 `json:"heading_err_deg,omitempty"`
}

// Result is the scored outcome of one trial — the shape committed to the
// golden corpus.
type Result struct {
	Name  string       `json:"name"`
	Ships []ShipResult `json:"ships"`
	// FalseConfirms counts sink confirmations attributable to no vessel.
	FalseConfirms  int `json:"false_confirms"`
	ClustersFormed int `json:"clusters_formed"`
	Cancelled      int `json:"cancelled"`
	Failovers      int `json:"failovers"`
	// Adversary/defense tallies (zero for unattacked trials): byzantine
	// reports injected, reports the defense layer refused, nodes in
	// quarantine at end of run.
	Injected    int `json:"injected,omitempty"`
	Rejected    int `json:"rejected,omitempty"`
	Quarantined int `json:"quarantined,omitempty"`
	// NodeReports is the per-node detection stream in event order.
	NodeReports []TraceReport `json:"node_reports"`
	// Sink is the raw confirmation stream as received at the sink, in
	// arrival order — the unscored evidence behind Ships. Excluded from
	// the golden JSON (the scored fields above pin it with tolerance);
	// exposed for exact record→replay equivalence checks.
	Sink []sid.SinkReport `json:"-"`
}

// truth computes a vessel's ground truth over the grid: the wake-sweep
// window (earliest and latest front arrival over covered node anchors,
// clipped to the trial) and the mean generation speed and heading over
// those anchors.
func truth(spec Spec, cfg sid.Config, m *wake.Maneuver) ShipResult {
	sr := ShipResult{SweepStart: math.Inf(1), SweepEnd: math.Inf(-1)}
	var speedSum float64
	var headingSum geo.Vec2
	for _, pos := range cfg.Grid.Positions() {
		at, ok := m.ArrivalTime(pos)
		if !ok || at < 0 || at > spec.Duration {
			continue
		}
		sr.CoveredNodes++
		if at < sr.SweepStart {
			sr.SweepStart = at
		}
		if at > sr.SweepEnd {
			sr.SweepEnd = at
		}
		if v, ok := m.GenerationSpeed(pos); ok {
			speedSum += v
		}
		if dir, ok := m.GenerationHeading(pos); ok {
			headingSum = headingSum.Add(dir)
		}
	}
	if sr.CoveredNodes == 0 {
		sr.SweepStart, sr.SweepEnd = 0, 0
		return sr
	}
	sr.TrueSpeedKn = geo.ToKnots(speedSum / float64(sr.CoveredNodes))
	sr.TrueHeadingDeg = geo.ToDeg(headingSum.Angle())
	return sr
}

// windowDist is the distance from t to the ship's sweep window (0 inside).
func windowDist(sr ShipResult, t float64) float64 {
	switch {
	case sr.CoveredNodes == 0:
		return math.Inf(1)
	case t < sr.SweepStart:
		return sr.SweepStart - t
	case t > sr.SweepEnd:
		return t - sr.SweepEnd
	default:
		return 0
	}
}

// score builds the Result: ground truth per vessel, then each sink
// confirmation attributed to the vessel whose sweep window its mean onset
// falls nearest to (within attributionSlack), and the best attributed
// confirmation scored against that vessel's truth.
func score(spec Spec, cfg sid.Config, rt *sid.Runtime, ships []*wake.Maneuver) *Result {
	res := &Result{
		Name:           spec.Name,
		ClustersFormed: rt.ClustersFormed(),
		Cancelled:      rt.Cancelled(),
		Failovers:      rt.Failovers(),
		Injected:       rt.InjectedReports(),
		Rejected:       rt.RejectedReports(),
		Quarantined:    len(rt.QuarantinedNodes()),
		Sink:           append([]sid.SinkReport(nil), rt.SinkReports()...),
	}
	for i, m := range ships {
		sr := truth(spec, cfg, m)
		sr.Name = spec.Ships[i].Name
		res.Ships = append(res.Ships, sr)
	}
	for _, nr := range rt.NodeReports() {
		res.NodeReports = append(res.NodeReports, TraceReport{
			N: int(nr.Node), T: nr.Time, O: nr.Onset, E: nr.Energy,
		})
	}
	type best struct {
		c     float64
		onset float64
		rep   sid.SinkReport
		has   bool
	}
	bests := make([]best, len(ships))
	for _, rep := range rt.SinkReports() {
		who, dist := -1, attributionSlack
		for i := range res.Ships {
			if d := windowDist(res.Ships[i], rep.MeanOnset); d <= dist {
				who, dist = i, d
			}
		}
		if who < 0 {
			res.FalseConfirms++
			continue
		}
		res.Ships[who].Confirms++
		if !bests[who].has || rep.C > bests[who].c {
			bests[who] = best{c: rep.C, onset: rep.MeanOnset, rep: rep, has: true}
		}
	}
	for i := range res.Ships {
		sr := &res.Ships[i]
		sr.Detected = sr.Confirms > 0
		if !bests[i].has {
			continue
		}
		sr.BestC = bests[i].c
		sr.MeanOnset = bests[i].onset
		rep := bests[i].rep
		if !rep.HasSpeed {
			continue
		}
		sr.HasSpeed = true
		sr.SpeedKn = geo.ToKnots(rep.Speed)
		sr.HeadingDeg = geo.ToDeg(rep.Heading)
		if sr.TrueSpeedKn > 0 {
			sr.SpeedErrFrac = math.Abs(sr.SpeedKn-sr.TrueSpeedKn) / sr.TrueSpeedKn
		}
		est := geo.Vec2{X: math.Cos(rep.Heading), Y: math.Sin(rep.Heading)}
		tru := geo.Vec2{X: math.Cos(geo.Deg(sr.TrueHeadingDeg)), Y: math.Sin(geo.Deg(sr.TrueHeadingDeg))}
		sr.HeadingErrDeg = geo.ToDeg(geo.AngleBetween(est, tru))
	}
	return res
}
