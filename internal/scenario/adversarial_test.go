package scenario

import (
	"path/filepath"
	"testing"
)

// TestAdversarialGoldenCorpus pins the adversarial family exactly like
// TestGoldenCorpus pins the main corpus — counts and booleans exact,
// floats inside the tolerance bands. Refresh with
//
//	go run ./cmd/sidbench -exp scenarios -update
func TestAdversarialGoldenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus replay is slow")
	}
	dir := AdversarialGoldenDir(filepath.Join("testdata", "golden"))
	for _, spec := range AdversarialCorpus() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			want, err := LoadGolden(dir, spec.Name)
			if err != nil {
				t.Fatalf("missing golden (run sidbench -exp scenarios -update): %v", err)
			}
			got, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, viol := range Diff(want, got) {
				t.Errorf("drift: %s", viol)
			}
		})
	}
}

// TestByzantinePairDefenseRecovers is the corpus's own acceptance check,
// independent of golden files: on the shared byzantine seed the defended
// arm must confirm the intruder at the sink.
func TestByzantinePairDefenseRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("full trial is slow")
	}
	var defended, undefended *Result
	for _, spec := range AdversarialCorpus() {
		switch spec.Name {
		case "adv-byzantine-defended":
			r, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			defended = r
		case "adv-byzantine-undefended":
			r, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			undefended = r
		}
	}
	if defended == nil || undefended == nil {
		t.Fatal("byzantine pair missing from corpus")
	}
	if defended.Injected == 0 || undefended.Injected == 0 {
		t.Fatalf("attack did not fire: injected %d / %d", defended.Injected, undefended.Injected)
	}
	if len(defended.Ships) != 1 || !defended.Ships[0].Detected {
		t.Errorf("defended arm lost the intruder: %+v", defended.Ships)
	}
	if defended.FalseConfirms > undefended.FalseConfirms+1 {
		t.Errorf("defense added false confirms: %d vs %d",
			defended.FalseConfirms, undefended.FalseConfirms)
	}
}
