package scenario

import (
	"path/filepath"

	"github.com/sid-wsn/sid/internal/adversary"
)

// AdversarialCorpus returns the adversarial golden family: evasive
// intruders that stress the detector's physics assumptions, and byzantine /
// clock-spoof attacks paired defended vs undefended on identical seeds.
// Their results live under testdata/golden/adversarial and are pinned by
// TestAdversarialGoldenCorpus; refresh with
//
//	go run ./cmd/sidbench -exp scenarios -update
//
// (the scenarios runner covers both corpora). The geometry convention
// matches Corpus(): a 4×5 grid at 25 m spacing unless a scenario says
// otherwise, intruders entering south and sailing up between the columns.
func AdversarialCorpus() []Spec {
	// The byzantine pair shares one plan and seed so the golden files
	// document exactly what the defense changes: same attack, same sea,
	// same clocks — different outcome.
	byzPlan := adversary.Plan{
		Byzantine: adversary.ByzantineFraction(20, 0.2,
			adversary.ByzantineNode{
				Behavior: adversary.Fabricate,
				Start:    150, Period: 12, Count: 8, EnergyBase: 180,
			}, 901, 0),
	}
	replayPlan := adversary.Plan{
		Byzantine: adversary.ByzantineFraction(20, 0.2,
			adversary.ByzantineNode{
				Behavior: adversary.Replay,
				Start:    300, Period: 18, Count: 5,
			}, 902, 0),
	}
	spoofPlan := adversary.Plan{}
	for _, id := range adversary.SpoofNodes(20, 3, 903, 0) {
		spoofPlan.ClockSpoofs = append(spoofPlan.ClockSpoofs, adversary.ClockSpoof{
			Node: id, At: 40, SkewPPM: 12000, // ~1.3 s of error by the crossing
		})
	}
	return []Spec{
		{
			// An evasive intruder loitering below hull speed: at 3 knots the
			// wake-making resistance regime the detector banks on barely
			// exists. The golden pins how far the floor is — whether the
			// grid sees anything at all.
			Name: "adv-loiter-3kn", Duration: 500, Seed: 911,
			Ships: []ShipSpec{{
				Name: "loiterer", EnterAt: 40,
				Waypoints: []WaypointSpec{{62.5, -150, 3}, {62.5, 250, 3}},
			}},
		},
		{
			// Swell-matched drifting in a higher sea: the intruder creeps at
			// 2 kn through 0.6 m swell, hiding its wake inside the ambient
			// band. The anomaly detector's adaptive threshold is what is
			// under test.
			Name: "adv-drift-swell", Duration: 600, Seed: 912,
			Hs: 0.6, Tp: 5.5,
			Ships: []ShipSpec{{
				Name: "drifter", EnterAt: 40,
				Waypoints: []WaypointSpec{{62.5, -120, 2}, {62.5, 220, 2}},
			}},
		},
		{
			// A storm-sea crossing at speed: 1.1 m seas raise the ambient
			// energy an order of magnitude; the wake must still stand out
			// for a 14 kn crossing.
			Name: "adv-storm-crossing", Duration: 350, Seed: 913,
			Hs: 1.1, Tp: 6.5,
			Ships: []ShipSpec{{
				Name: "intruder", EnterAt: 85,
				Waypoints: []WaypointSpec{{62.5, -250, 14}, {62.5, 350, 14}},
			}},
		},
		{
			// 20% fabricating byzantine nodes polluting the genuine pass's
			// collection — undefended arm. The golden pins the damage.
			Name: "adv-byzantine-undefended", Duration: 400, Seed: 914,
			Adversary: byzPlan,
			Ships: []ShipSpec{{
				Name: "intruder", EnterAt: 85,
				Waypoints: []WaypointSpec{{62.5, -250, 10}, {62.5, 350, 10}},
			}},
		},
		{
			// Identical attack and seed, defenses on: trimmed evaluation
			// must recover the pass and the trim ledger must charge the
			// fabricators.
			Name: "adv-byzantine-defended", Duration: 400, Seed: 914,
			Adversary: byzPlan, Defense: true,
			Ships: []ShipSpec{{
				Name: "intruder", EnterAt: 85,
				Waypoints: []WaypointSpec{{62.5, -250, 10}, {62.5, 350, 10}},
			}},
		},
		{
			// Post-pass replay campaign, defenses on: freshness gating must
			// reject the stale reports and quarantine the persistent
			// replayers while the genuine crossing stays confirmed.
			Name: "adv-replay-defended", Duration: 500, Seed: 917,
			Adversary: replayPlan, Defense: true,
			Ships: []ShipSpec{{
				Name: "intruder", EnterAt: 85,
				Waypoints: []WaypointSpec{{62.5, -250, 10}, {62.5, 350, 10}},
			}},
		},
		{
			// Smoothly spoofed clocks on three nodes, defenses on: the
			// leave-one-out speed fit must keep the estimate near truth
			// even when a poisoned timestamp lands in the four-node pick.
			Name: "adv-clock-spoof-defended", Duration: 400, Seed: 916,
			Adversary: spoofPlan, Defense: true,
			Ships: []ShipSpec{{
				Name: "intruder", EnterAt: 85,
				Waypoints: []WaypointSpec{{62.5, -250, 10}, {62.5, 350, 10}},
			}},
		},
	}
}

// AdversarialGoldenDir returns the adversarial family's golden directory
// under the main corpus dir.
func AdversarialGoldenDir(goldenDir string) string {
	return filepath.Join(goldenDir, "adversarial")
}
