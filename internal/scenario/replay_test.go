package scenario

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/sid-wsn/sid/internal/obs"
	"github.com/sid-wsn/sid/internal/source"
)

// journaledRun wraps a scenario execution with a JSONL journal and returns
// the result plus the raw journal bytes.
func journaledRun(t *testing.T, run func(col *obs.Collector) (*Result, error)) (*Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	j := obs.NewJournal(obs.DefaultJournalCap)
	j.SetSink(&buf)
	col := obs.New()
	col.SetJournal(j)
	res, err := run(col)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Err(); err != nil {
		t.Fatalf("journal sink error: %v", err)
	}
	return res, append([]byte(nil), buf.Bytes()...)
}

// TestRecordReplayEquivalence is the record→replay acceptance gate: record
// the single-10kn golden scenario, replay the recording through a
// source.Trace, and require the replay's detections and journal event
// stream to be bit-identical to the originating simulation — in memory and
// after a SIDTRACE disk round-trip. The gate runs once per synthesis mode:
// a spectral recording must replay just as bit-identically as a phasor one
// (replay itself never synthesizes, so the mode only shapes what was
// recorded).
func TestRecordReplayEquivalence(t *testing.T) {
	t.Run("phasor", func(t *testing.T) { testRecordReplayEquivalence(t, false) })
	t.Run("spectral", func(t *testing.T) { testRecordReplayEquivalence(t, true) })
}

func testRecordReplayEquivalence(t *testing.T, spectral bool) {
	spec := corpusSpec(t, "single-10kn")
	spec.Spectral = spectral

	var rec *source.Recording
	orig, origJournal := journaledRun(t, func(col *obs.Collector) (*Result, error) {
		res, r, err := Record(spec, col)
		rec = r
		return res, err
	})
	if len(orig.Sink) == 0 {
		t.Fatal("recording run produced no sink confirmations; the equivalence test needs a detection")
	}

	// Recording must not perturb the run: same result as a plain run.
	plain, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, plain) {
		t.Error("result with recording attached differs from plain Run")
	}

	check := func(t *testing.T, src source.Source) {
		t.Helper()
		replay, replayJournal := journaledRun(t, func(col *obs.Collector) (*Result, error) {
			return Replay(spec, src, col)
		})
		if !reflect.DeepEqual(replay.Sink, orig.Sink) {
			t.Errorf("replay sink confirmations differ:\n got %+v\nwant %+v", replay.Sink, orig.Sink)
		}
		if !reflect.DeepEqual(replay.NodeReports, orig.NodeReports) {
			t.Errorf("replay node reports differ (%d vs %d)", len(replay.NodeReports), len(orig.NodeReports))
		}
		if !reflect.DeepEqual(replay, orig) {
			t.Error("replay Result differs from the originating simulation")
		}
		if !bytes.Equal(replayJournal, origJournal) {
			t.Errorf("replay journal is not bit-identical (%d vs %d bytes)",
				len(replayJournal), len(origJournal))
		}
	}

	t.Run("in-memory", func(t *testing.T) {
		src, err := rec.Source()
		if err != nil {
			t.Fatal(err)
		}
		check(t, src)
	})

	t.Run("disk-round-trip", func(t *testing.T) {
		dir := t.TempDir()
		if err := rec.Save(dir); err != nil {
			t.Fatal(err)
		}
		src, err := source.OpenTraceDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		if src.Seed() != spec.Seed {
			t.Errorf("trace seed %d, want %d", src.Seed(), spec.Seed)
		}
		check(t, src)
	})
}

// TestReplayDifferentWorkers pins that replay, like synthesis, is
// bit-identical for any Workers value.
func TestReplayDifferentWorkers(t *testing.T) {
	spec := corpusSpec(t, "single-10kn")
	_, rec, err := Record(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	var base *Result
	for _, workers := range []int{1, 3} {
		spec.Workers = workers
		src, err := rec.Source()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Replay(spec, src, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(res, base) {
			t.Errorf("workers=%d: replay result differs from workers=1", workers)
		}
	}
}
