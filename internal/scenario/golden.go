package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"github.com/sid-wsn/sid/internal/fault"
)

// Corpus returns the canonical regression scenarios. Their results are
// committed under testdata/golden and pinned by TestGoldenCorpus; after an
// intentional behaviour change, refresh the files with
//
//	go run ./cmd/sidbench -exp scenarios -update
//
// and review the diff like any other code change (docs/SCENARIOS.md).
//
// The geometry convention follows the sea trials: a 4×5 grid at 25 m
// spacing (rows along +Y), intruders entering south of the grid and
// sailing up between the columns at x = 62.5 m unless a scenario says
// otherwise.
func Corpus() []Spec {
	return []Spec{
		{
			// The paper's baseline trial: one fishing boat at 10 knots.
			Name: "single-10kn", Duration: 300, Seed: 301,
			Ships: []ShipSpec{{
				Name: "intruder", EnterAt: 85,
				Waypoints: []WaypointSpec{{62.5, -250, 10}, {62.5, 350, 10}},
			}},
		},
		{
			// The faster pass of §VII (16 knots): stronger wake, earlier
			// arrival, higher wake frequency.
			Name: "single-16kn", Duration: 300, Seed: 352,
			Ships: []ShipSpec{{
				Name: "intruder", EnterAt: 85,
				Waypoints: []WaypointSpec{{62.5, -250, 16}, {62.5, 350, 16}},
			}},
		},
		{
			// A crossing oblique to the grid axes: onset ordering across
			// rows survives a slanted travel line.
			Name: "oblique-30deg", Duration: 400, Seed: 313,
			Ships: []ShipSpec{{
				Name: "intruder", EnterAt: 60,
				Waypoints: []WaypointSpec{{-80, -220, 12}, {220, 300, 12}},
			}},
		},
		{
			// Two vessels on crossing tracks, entries staggered beyond the
			// collection window so each forms its own cluster.
			Name: "two-crossing", Duration: 480, Seed: 324,
			Ships: []ShipSpec{
				{
					Name: "northbound", EnterAt: 70,
					Waypoints: []WaypointSpec{{62.5, -250, 10}, {62.5, 350, 10}},
				},
				{
					Name: "crossing", EnterAt: 230,
					Waypoints: []WaypointSpec{{250, -100, 14}, {-150, 250, 14}},
				},
			},
		},
		{
			// A convoy: same track, second vessel 160 s behind.
			Name: "convoy", Duration: 470, Seed: 325,
			Ships: []ShipSpec{
				{
					Name: "lead", EnterAt: 70,
					Waypoints: []WaypointSpec{{62.5, -250, 10}, {62.5, 350, 10}},
				},
				{
					Name: "trail", EnterAt: 230,
					Waypoints: []WaypointSpec{{62.5, -250, 12}, {62.5, 350, 12}},
				},
			},
		},
		{
			// An accelerating intruder (6 → 16 knots): the wake signature
			// the grid sees belongs to the 12–16 kn regime it had abeam of
			// the nodes, not the entry speed.
			Name: "accelerating", Duration: 320, Seed: 306,
			Ships: []ShipSpec{{
				Name: "intruder", EnterAt: 80,
				Waypoints: []WaypointSpec{
					{62.5, -250, 6}, {62.5, 0, 12}, {62.5, 350, 16},
				},
			}},
		},
		{
			// A dogleg: the vessel crosses the grid then turns north-east.
			// All nodes lie abeam of the first leg; the turn exercises the
			// multi-leg arrival extrapolation for far columns.
			Name: "dogleg", Duration: 350, Seed: 307,
			Ships: []ShipSpec{{
				Name: "intruder", EnterAt: 85,
				Waypoints: []WaypointSpec{
					{62.5, -250, 10}, {62.5, 150, 10}, {220, 300, 10},
				},
			}},
		},
		{
			// 30% frame loss with the resilience layer on: the ARQ
			// transport and failover must still deliver the confirmation.
			Name: "lossy-30", Duration: 320, Seed: 308,
			PacketLoss: 0.30, Reliable: true, Failover: true,
			Ships: []ShipSpec{{
				Name: "intruder", EnterAt: 85,
				Waypoints: []WaypointSpec{{62.5, -250, 10}, {62.5, 350, 10}},
			}},
		},
		{
			// 15% of nodes crash mid-sweep (sink protected); failover and
			// ARQ keep the cluster alive.
			Name: "node-failures", Duration: 350, Seed: 309,
			Reliable: true, Failover: true,
			Faults: fault.CrashFraction(20, 0.15, 160, 2, 309, 0),
			Ships: []ShipSpec{{
				Name: "intruder", EnterAt: 85,
				Waypoints: []WaypointSpec{{62.5, -250, 10}, {62.5, 350, 10}},
			}},
		},
		{
			// No ship at all: the corpus pins the false-confirm floor too.
			Name: "quiet-sea", Duration: 200, Seed: 310,
		},
	}
}

// DefaultGoldenDir is the committed corpus location, relative to the repo
// root.
const DefaultGoldenDir = "internal/scenario/testdata/golden"

// GoldenPath returns the golden file for a scenario name inside dir.
func GoldenPath(dir, name string) string {
	return filepath.Join(dir, name+".json")
}

// round3 keeps golden files compact and diff-friendly: three decimals carry
// every tolerance band with an order of magnitude to spare.
func round3(x float64) float64 { return math.Round(x*1000) / 1000 }

// rounded returns a copy of res with all float fields rounded for storage.
func rounded(res *Result) *Result {
	out := *res
	out.Ships = append([]ShipResult(nil), res.Ships...)
	for i := range out.Ships {
		s := &out.Ships[i]
		s.SweepStart = round3(s.SweepStart)
		s.SweepEnd = round3(s.SweepEnd)
		s.TrueSpeedKn = round3(s.TrueSpeedKn)
		s.TrueHeadingDeg = round3(s.TrueHeadingDeg)
		s.BestC = round3(s.BestC)
		s.MeanOnset = round3(s.MeanOnset)
		s.SpeedKn = round3(s.SpeedKn)
		s.HeadingDeg = round3(s.HeadingDeg)
		s.SpeedErrFrac = round3(s.SpeedErrFrac)
		s.HeadingErrDeg = round3(s.HeadingErrDeg)
	}
	out.NodeReports = append([]TraceReport(nil), res.NodeReports...)
	for i := range out.NodeReports {
		r := &out.NodeReports[i]
		r.T = round3(r.T)
		r.O = round3(r.O)
		r.E = round3(r.E)
	}
	return &out
}

// WriteGolden stores the (rounded) result as dir/<name>.json.
func WriteGolden(dir string, res *Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rounded(res), "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(GoldenPath(dir, res.Name), append(data, '\n'), 0o644)
}

// LoadGolden reads a committed golden result.
func LoadGolden(dir, name string) (*Result, error) {
	data, err := os.ReadFile(GoldenPath(dir, name))
	if err != nil {
		return nil, err
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("scenario golden %q: %w", name, err)
	}
	return &res, nil
}

// Tolerance bands for Diff. Counts and booleans are compared exactly: the
// engine is deterministic, so any count change is a behaviour change. The
// float bands absorb numeric refactors (reordered summation, fused
// operations) without letting metric drift through.
const (
	tolSweep     = 0.5  // s, analytic ground-truth arrivals
	tolTruth     = 0.5  // kn / deg, analytic ground-truth speed and heading
	tolOnset     = 0.75 // s, node-level onset and detection times
	tolMeanOnset = 1.5  // s, cluster mean onset
	tolC         = 0.08 // correlation coefficient
	tolSpeedRel  = 0.08 // relative, estimated speed
	tolHeading   = 8.0  // deg, estimated heading
	tolEnergyRel = 0.15 // relative, reported wake energy
)

// Diff compares a freshly computed result against the committed golden and
// returns one violation string per out-of-band metric (empty means the run
// is within tolerance).
func Diff(want, got *Result) []string {
	var v []string
	bad := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }
	near := func(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
	nearRel := func(a, b, rel float64) bool {
		return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))+1e-9
	}
	if want.Name != got.Name {
		bad("name: golden %q vs run %q", want.Name, got.Name)
		return v
	}
	for _, c := range []struct {
		what      string
		want, got int
	}{
		{"false_confirms", want.FalseConfirms, got.FalseConfirms},
		{"clusters_formed", want.ClustersFormed, got.ClustersFormed},
		{"cancelled", want.Cancelled, got.Cancelled},
		{"failovers", want.Failovers, got.Failovers},
		{"injected", want.Injected, got.Injected},
		{"rejected", want.Rejected, got.Rejected},
		{"quarantined", want.Quarantined, got.Quarantined},
		{"ships", len(want.Ships), len(got.Ships)},
		{"node_reports", len(want.NodeReports), len(got.NodeReports)},
	} {
		if c.want != c.got {
			bad("%s: golden %d vs run %d", c.what, c.want, c.got)
		}
	}
	for i := range want.Ships {
		if i >= len(got.Ships) {
			break
		}
		w, g := want.Ships[i], got.Ships[i]
		id := fmt.Sprintf("ship %q", w.Name)
		if w.Detected != g.Detected || w.Confirms != g.Confirms {
			bad("%s: detected/confirms golden %v/%d vs run %v/%d",
				id, w.Detected, w.Confirms, g.Detected, g.Confirms)
		}
		if w.CoveredNodes != g.CoveredNodes {
			bad("%s: covered_nodes golden %d vs run %d", id, w.CoveredNodes, g.CoveredNodes)
		}
		if !near(w.SweepStart, g.SweepStart, tolSweep) || !near(w.SweepEnd, g.SweepEnd, tolSweep) {
			bad("%s: sweep golden [%.3f,%.3f] vs run [%.3f,%.3f] (tol %g)",
				id, w.SweepStart, w.SweepEnd, g.SweepStart, g.SweepEnd, tolSweep)
		}
		if !near(w.TrueSpeedKn, g.TrueSpeedKn, tolTruth) || !near(w.TrueHeadingDeg, g.TrueHeadingDeg, tolTruth) {
			bad("%s: ground truth golden %.3fkn/%.3f° vs run %.3fkn/%.3f° (tol %g)",
				id, w.TrueSpeedKn, w.TrueHeadingDeg, g.TrueSpeedKn, g.TrueHeadingDeg, tolTruth)
		}
		if !near(w.BestC, g.BestC, tolC) {
			bad("%s: best_c golden %.3f vs run %.3f (tol %g)", id, w.BestC, g.BestC, tolC)
		}
		if !near(w.MeanOnset, g.MeanOnset, tolMeanOnset) {
			bad("%s: mean_onset golden %.3f vs run %.3f (tol %g)", id, w.MeanOnset, g.MeanOnset, tolMeanOnset)
		}
		if w.HasSpeed != g.HasSpeed {
			bad("%s: has_speed golden %v vs run %v", id, w.HasSpeed, g.HasSpeed)
			continue
		}
		if !w.HasSpeed {
			continue
		}
		if !nearRel(w.SpeedKn, g.SpeedKn, tolSpeedRel) {
			bad("%s: speed_kn golden %.3f vs run %.3f (rel tol %g)", id, w.SpeedKn, g.SpeedKn, tolSpeedRel)
		}
		if !near(w.HeadingDeg, g.HeadingDeg, tolHeading) {
			bad("%s: heading_deg golden %.3f vs run %.3f (tol %g)", id, w.HeadingDeg, g.HeadingDeg, tolHeading)
		}
	}
	for i := range want.NodeReports {
		if i >= len(got.NodeReports) {
			break
		}
		w, g := want.NodeReports[i], got.NodeReports[i]
		if w.N != g.N {
			bad("node report %d: node golden %d vs run %d", i, w.N, g.N)
			continue
		}
		if !near(w.T, g.T, tolOnset) || !near(w.O, g.O, tolOnset) {
			bad("node report %d (node %d): time/onset golden %.3f/%.3f vs run %.3f/%.3f (tol %g)",
				i, w.N, w.T, w.O, g.T, g.O, tolOnset)
		}
		if !nearRel(w.E, g.E, tolEnergyRel) {
			bad("node report %d (node %d): energy golden %.3f vs run %.3f (rel tol %g)",
				i, w.N, w.E, g.E, tolEnergyRel)
		}
	}
	return v
}
