package scenario

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"github.com/sid-wsn/sid/internal/obs"
)

// TestJournalDeterministicAcrossWorkers pins the journal's central
// guarantee: events are emitted from scheduler-serial phases only, so the
// JSONL stream is byte-identical for any Config.Workers value at the same
// seed. It also proves attaching a collector does not perturb the run: the
// Result matches a plain Run of the same spec.
func TestJournalDeterministicAcrossWorkers(t *testing.T) {
	spec := corpusSpec(t, "single-10kn")

	baseline, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	var first []byte
	workerSet := []int{1, 4, runtime.NumCPU()}
	for _, workers := range workerSet {
		spec.Workers = workers
		var buf bytes.Buffer
		j := obs.NewJournal(obs.DefaultJournalCap)
		j.SetSink(&buf)
		col := obs.New()
		col.SetJournal(j)
		res, err := RunWithCollector(spec, col)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := j.Err(); err != nil {
			t.Fatalf("workers=%d: journal sink error: %v", workers, err)
		}
		if j.Total() == 0 {
			t.Fatalf("workers=%d: journal is empty; the corpus crossing should emit events", workers)
		}
		if !reflect.DeepEqual(res, baseline) {
			t.Errorf("workers=%d: result with collector differs from plain Run", workers)
		}
		if first == nil {
			first = append([]byte(nil), buf.Bytes()...)
			continue
		}
		if !bytes.Equal(first, buf.Bytes()) {
			t.Errorf("workers=%d: journal differs from workers=%d (%d vs %d bytes)",
				workers, workerSet[0], buf.Len(), len(first))
		}
	}
}
