package eval

import (
	"math"

	"github.com/sid-wsn/sid/internal/adversary"
	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/scenario"
)

// Adversarial measures how detection degrades under byzantine report
// injection, with and without the head-side defenses. Like the resilience
// sweep, every comparison is paired: the defended and undefended arms run
// the same seeds, the same sea, the same ship, and the same attack plan —
// the defense layer is the only difference. This is the experiment behind
// the threat-model section of docs/RESILIENCE.md.

// AdversarialConfig parametrizes the sweep.
type AdversarialConfig struct {
	// Grid is the deployment (6×6 at 25 m by default).
	Grid geo.GridSpec
	// ByzFracs is the compromised-node fraction sweep (the sink is never
	// compromised).
	ByzFracs []float64
	// Trials is the number of seeds per sweep point, shared between arms.
	Trials int
	// SpeedKn is the intruder speed in knots.
	SpeedKn float64
	// Seed drives everything.
	Seed int64
}

// DefaultAdversarialConfig returns the sweep reported in RESILIENCE.md.
func DefaultAdversarialConfig() AdversarialConfig {
	return AdversarialConfig{
		Grid:     geo.GridSpec{Rows: 6, Cols: 6, Spacing: 25},
		ByzFracs: []float64{0, 0.1, 0.2, 0.3},
		Trials:   3,
		SpeedKn:  10,
		Seed:     1,
	}
}

// AdversarialPoint is one cell of the sweep: a (byzantine fraction,
// defense arm) pair aggregated over trials.
type AdversarialPoint struct {
	ByzFrac  float64
	Defended bool
	Trials   int
	// Detected counts trials where the intruder was confirmed at the sink
	// (confirmations attributed to the ship's sweep window).
	Detected int
	// FalseConfirms totals confirmations attributable to no vessel.
	FalseConfirms int
	// Injected, Rejected and Quarantined total the attack volume and the
	// defense's reaction across trials (Rejected/Quarantined are zero for
	// the undefended arm by construction).
	Injected, Rejected, Quarantined int
	// DetectionRatio is Detected/Trials; FalseAlarmRate is FalseConfirms
	// per trial.
	DetectionRatio, FalseAlarmRate float64
}

// Adversarial runs the sweep: every byzantine fraction twice — undefended
// and defended — over the same per-trial seeds. The attack is the
// fabrication campaign: compromised nodes inject plausible reports
// throughout the genuine pass's collection windows, dragging the
// correlation gates down.
func Adversarial(cfg AdversarialConfig) ([]AdversarialPoint, error) {
	if len(cfg.ByzFracs) == 0 || cfg.Trials <= 0 {
		return nil, errf("Adversarial: byzantine fractions and trials must be non-empty/positive")
	}
	if cfg.Grid.Rows == 0 {
		cfg.Grid = DefaultAdversarialConfig().Grid
	}
	var out []AdversarialPoint
	for _, frac := range cfg.ByzFracs {
		for _, defended := range []bool{false, true} {
			pt := AdversarialPoint{ByzFrac: frac, Defended: defended, Trials: cfg.Trials}
			for trial := 0; trial < cfg.Trials; trial++ {
				seed := cfg.Seed + int64(trial)*7919 + int64(frac*1000)*131
				res, err := adversarialTrial(cfg, frac, defended, seed)
				if err != nil {
					return nil, err
				}
				if len(res.Ships) == 1 && res.Ships[0].Detected {
					pt.Detected++
				}
				pt.FalseConfirms += res.FalseConfirms
				pt.Injected += res.Injected
				pt.Rejected += res.Rejected
				pt.Quarantined += res.Quarantined
			}
			pt.DetectionRatio = float64(pt.Detected) / float64(pt.Trials)
			pt.FalseAlarmRate = float64(pt.FalseConfirms) / float64(pt.Trials)
			out = append(out, pt)
		}
	}
	return out, nil
}

// adversarialTrial runs one full deployment through the scenario engine
// (which attributes confirmations to the ship's ground truth): crossing
// arrives ~150 s, fabrication campaign covers the collection windows of
// the pass, victims chosen deterministically per seed.
func adversarialTrial(cfg AdversarialConfig, frac float64, defended bool, seed int64) (*scenario.Result, error) {
	center := cfg.Grid.Center()
	spec := scenario.Spec{
		Name: "adv-trial",
		Rows: cfg.Grid.Rows, Cols: cfg.Grid.Cols, SpacingM: cfg.Grid.Spacing,
		Duration: 450,
		Seed:     seed,
		Defense:  defended,
		Ships: []scenario.ShipSpec{{
			Name: "intruder", EnterAt: 85,
			Waypoints: []scenario.WaypointSpec{
				{X: center.X + cfg.Grid.Spacing/2, Y: -250, SpeedKn: cfg.SpeedKn},
				{X: center.X + cfg.Grid.Spacing/2, Y: center.Y + 300, SpeedKn: cfg.SpeedKn},
			},
		}},
	}
	if frac > 0 {
		spec.Adversary = adversary.Plan{
			Byzantine: adversary.ByzantineFraction(cfg.Grid.NumNodes(), frac,
				adversary.ByzantineNode{
					Behavior: adversary.Fabricate,
					Start:    150, Period: 12, Count: 10, EnergyBase: 180,
				}, seed, 0),
		}
	}
	return scenario.Run(spec)
}

// AdversarialSummary condenses a sweep into the acceptance numbers: the
// honest (no-attack) baselines and each arm's behavior at the heaviest
// attacked fraction.
type AdversarialSummary struct {
	// HonestDetection and HonestFalseAlarmRate are the undefended,
	// unattacked baselines.
	HonestDetection, HonestFalseAlarmRate float64
	// WorstFrac is the largest attacked fraction in the sweep; the At
	// fields read that cell.
	WorstFrac float64
	// DefendedDetectionAtWorst / UndefendedDetectionAtWorst are each arm's
	// detection ratios at WorstFrac; likewise the false-alarm rates.
	DefendedDetectionAtWorst, UndefendedDetectionAtWorst float64
	DefendedFalseAlarmsAtWorst                           float64
}

// SummarizeAdversarial extracts the headline numbers from a sweep.
func SummarizeAdversarial(points []AdversarialPoint) AdversarialSummary {
	s := AdversarialSummary{WorstFrac: math.Inf(-1)}
	for _, p := range points {
		if p.ByzFrac > s.WorstFrac {
			s.WorstFrac = p.ByzFrac
		}
	}
	for _, p := range points {
		switch {
		case p.ByzFrac == 0 && !p.Defended:
			s.HonestDetection = p.DetectionRatio
			s.HonestFalseAlarmRate = p.FalseAlarmRate
		case p.ByzFrac == s.WorstFrac && p.Defended:
			s.DefendedDetectionAtWorst = p.DetectionRatio
			s.DefendedFalseAlarmsAtWorst = p.FalseAlarmRate
		case p.ByzFrac == s.WorstFrac && !p.Defended:
			s.UndefendedDetectionAtWorst = p.DetectionRatio
		}
	}
	return s
}
