package eval

import (
	"math"
	"testing"
)

func TestFig5Shape(t *testing.T) {
	sc := DefaultScenario()
	sc.Seed = 7
	r, err := Fig5(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Duration != 250 {
		t.Errorf("duration = %v", r.Duration)
	}
	// Paper's Fig. 5: z oscillates around 1 g (1024 counts), x/y around 0.
	if math.Abs(r.Z.Mean-1024) > 30 {
		t.Errorf("z mean = %v", r.Z.Mean)
	}
	if math.Abs(r.X.Mean) > 30 || math.Abs(r.Y.Mean) > 30 {
		t.Errorf("x/y means = %v, %v", r.X.Mean, r.Y.Mean)
	}
	if r.Z.Std < 5 || r.Z.Std > 300 {
		t.Errorf("z std = %v", r.Z.Std)
	}
	if len(r.ZSeries) == 0 {
		t.Error("no plot series")
	}
}

func TestFig6Shape(t *testing.T) {
	sc := DefaultScenario()
	sc.Seed = 11
	r, err := Fig6N(sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The ship passage must move the dominant spectral peak into the wake
	// band far more often than the quiet sea puts it there, and raise the
	// wake-band energy substantially.
	if r.WakeBandFracShip <= r.WakeBandFracQuiet {
		t.Errorf("wake-band dominance: ship %v vs quiet %v",
			r.WakeBandFracShip, r.WakeBandFracQuiet)
	}
	if r.WakeBandFracShip < 0.5 {
		t.Errorf("ship wake-band fraction = %v, want ≥ 0.5", r.WakeBandFracShip)
	}
	if r.MeanShipWakeBandEnergyRatio < 3 {
		t.Errorf("wake-band energy ratio = %v, want ≥ 3", r.MeanShipWakeBandEnergyRatio)
	}
	if r.WakeFreq <= 0 || r.WakeFreq > 1 {
		t.Errorf("wake freq = %v", r.WakeFreq)
	}
}

func TestFig6Validation(t *testing.T) {
	sc := DefaultScenario()
	sc.ShipSpeed = 0
	if _, err := Fig6(sc); err == nil {
		t.Error("expected error without a ship")
	}
	if _, err := Fig6N(DefaultScenario(), 0); err == nil {
		t.Error("expected error for zero trials")
	}
}

func TestFig7Shape(t *testing.T) {
	sc := DefaultScenario()
	sc.Seed = 13
	r, err := Fig7(sc)
	if err != nil {
		t.Fatal(err)
	}
	// "Ship waves mainly focus on the low frequency spectrum."
	if r.LowBandFractionDuring < 0.7 {
		t.Errorf("low-band fraction = %v, want ≥ 0.7", r.LowBandFractionDuring)
	}
	if r.BurstRatio < 1.5 {
		t.Errorf("burst ratio = %v, want > 1.5", r.BurstRatio)
	}
	if r.PeakFreq <= 0 || r.PeakFreq > 1 {
		t.Errorf("peak freq = %v", r.PeakFreq)
	}
	sc.ShipSpeed = 0
	if _, err := Fig7(sc); err == nil {
		t.Error("expected error without a ship")
	}
}

func TestFig8Shape(t *testing.T) {
	sc := DefaultScenario()
	sc.Seed = 17
	r, err := Fig8(sc)
	if err != nil {
		t.Fatal(err)
	}
	// The 1 Hz low-pass must annihilate the 2–25 Hz band...
	if r.HighBandPowerFiltered > r.HighBandPowerRaw/100 {
		t.Errorf("filter left %v of %v in the stopband",
			r.HighBandPowerFiltered, r.HighBandPowerRaw)
	}
	// ...while keeping the sub-1 Hz waves (std barely drops).
	if r.FilteredStd < r.RawStd/3 {
		t.Errorf("filter destroyed the passband: %v -> %v", r.RawStd, r.FilteredStd)
	}
	// Fig. 8b: the wake stands clear of the background after filtering.
	if r.DisturbanceRatio < 2 {
		t.Errorf("disturbance ratio = %v, want ≥ 2", r.DisturbanceRatio)
	}
	sc.ShipSpeed = 0
	if _, err := Fig8(sc); err == nil {
		t.Error("expected error without a ship")
	}
}

func TestFig11Shape(t *testing.T) {
	cfg := DefaultFig11Config()
	cfg.Ms = []float64{1, 3}
	cfg.AFs = []float64{0.4, 0.9}
	cfg.Trials = 4
	cfg.Scenario.Seed = 23
	pts, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	get := func(m, af float64) float64 {
		for _, p := range pts {
			if p.M == m && p.AF == af {
				return p.Ratio
			}
		}
		t.Fatalf("missing point M=%v af=%v", m, af)
		return 0
	}
	// Ratios rise with M at fixed af, and with af at fixed (high) M.
	if get(3, 0.9) <= get(1, 0.9) {
		t.Errorf("M=3 (%v) should beat M=1 (%v) at af=0.9", get(3, 0.9), get(1, 0.9))
	}
	if get(3, 0.9) <= get(3, 0.4) {
		t.Errorf("af=0.9 (%v) should beat af=0.4 (%v) at M=3", get(3, 0.9), get(3, 0.4))
	}
	for _, p := range pts {
		if p.Ratio < 0 || p.Ratio > 1 {
			t.Errorf("ratio out of range: %+v", p)
		}
	}
}

func TestFig11Validation(t *testing.T) {
	cfg := DefaultFig11Config()
	cfg.Trials = 0
	if _, err := Fig11(cfg); err == nil {
		t.Error("expected error for zero trials")
	}
	cfg = DefaultFig11Config()
	cfg.Ms = nil
	if _, err := Fig11(cfg); err == nil {
		t.Error("expected error for empty Ms")
	}
}

func TestTablesShape(t *testing.T) {
	cfg := DefaultTableConfig()
	cfg.Ms = []float64{2}
	cfg.RowsSet = []int{4}
	cfg.Trials = 2
	cfg.Seed = 29
	t1, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != 1 || len(t2) != 1 {
		t.Fatalf("cells: %d, %d", len(t1), len(t2))
	}
	// The paper's core claim: intrusions correlate, false alarms do not.
	if t2[0].C <= t1[0].C {
		t.Errorf("ship C (%v) must exceed no-ship C (%v)", t2[0].C, t1[0].C)
	}
	if t2[0].C < 0.3 {
		t.Errorf("ship C = %v, want ≥ 0.3", t2[0].C)
	}
	if t1[0].C > 0.3 {
		t.Errorf("no-ship C = %v, want ≤ 0.3", t1[0].C)
	}
}

func TestTableValidation(t *testing.T) {
	cfg := DefaultTableConfig()
	cfg.Trials = 0
	if _, err := Table1(cfg); err == nil {
		t.Error("expected error for zero trials")
	}
	cfg = DefaultTableConfig()
	cfg.RowsSet = nil
	if _, err := Table2(cfg); err == nil {
		t.Error("expected error for empty rows")
	}
}

func TestFig12Shape(t *testing.T) {
	cfg := DefaultFig12Config()
	cfg.SpeedsKn = []float64{10}
	cfg.AnglesDeg = []float64{0, 20}
	cfg.RunsPerAngle = 2
	cfg.Seed = 31
	rows, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Runs == 0 {
		t.Fatal("no successful estimates")
	}
	// The paper's bracket: within ~20% of the actual speed (we allow a
	// little extra for the small sample here).
	if r.WorstRelErr > 0.30 {
		t.Errorf("worst relative error = %v", r.WorstRelErr)
	}
	if r.MinKn > r.MeanKn || r.MeanKn > r.MaxKn {
		t.Errorf("summary ordering broken: %+v", r)
	}
}

func TestFig12Validation(t *testing.T) {
	cfg := DefaultFig12Config()
	cfg.SpeedsKn = nil
	if _, err := Fig12(cfg); err == nil {
		t.Error("expected error for empty speeds")
	}
}

func TestScenarioBuildValidation(t *testing.T) {
	sc := DefaultScenario()
	sc.Hs = -1
	if _, _, _, err := sc.Build(0); err == nil {
		t.Error("expected error for negative Hs")
	}
}

func TestStatsOf(t *testing.T) {
	s := statsOf([]float64{1, 2, 3, 4})
	if s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("stats = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
	if z := statsOf(nil); z.Mean != 0 || z.Std != 0 {
		t.Errorf("empty stats = %+v", z)
	}
}
