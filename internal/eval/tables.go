package eval

import (
	"math"

	"github.com/sid-wsn/sid/internal/cluster"
	"github.com/sid-wsn/sid/internal/detect"
	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sensor"
	"github.com/sid-wsn/sid/internal/wake"
)

// TableCell is one (M, rows) entry of Table I or Table II: the averaged
// correlation coefficient C.
type TableCell struct {
	M    float64
	Rows int
	C    float64
}

// TableConfig parametrizes the Table I / Table II experiments: a grid of
// Rows×5 nodes at 25 m spacing, per the paper's "We process 5 nodes' data
// in each row and compute correlation coefficient C from 4 to 6 rows
// respectively with different M".
type TableConfig struct {
	Ms      []float64
	RowsSet []int
	// Trials to average per cell.
	Trials int
	// Hs, Tp set the ambient sea.
	Hs, Tp float64
	// Speeds (m/s) of the ship passes averaged in Table II (ignored for
	// Table I).
	Speeds []float64
	// Seed drives all streams.
	Seed int64
}

// DefaultTableConfig returns the paper's grid of cells.
func DefaultTableConfig() TableConfig {
	return TableConfig{
		Ms:      []float64{1, 2, 3},
		RowsSet: []int{4, 5, 6},
		Trials:  10,
		Hs:      0.4,
		Tp:      6.0,
		Speeds:  []float64{geo.Knots(8), geo.Knots(10), geo.Knots(12), geo.Knots(16)},
		Seed:    1,
	}
}

const (
	tableCols    = 5
	tableSpacing = 25.0
	tableDur     = 400.0
	tableArrive  = 260.0
)

// Table1 reproduces Table I: the correlation coefficient of false-alarm
// reports with no ship present. The detection threshold is lowered (a
// minimal anomaly-frequency requirement) so that nodes produce false
// alarms, exactly as the paper does ("We low the threshold in order to
// have higher false alarm reports").
func Table1(cfg TableConfig) ([]TableCell, error) {
	return runTable(cfg, false)
}

// Table2 reproduces Table II: the correlation coefficient during real ship
// intrusions, averaged over ship speeds.
func Table2(cfg TableConfig) ([]TableCell, error) {
	return runTable(cfg, true)
}

func runTable(cfg TableConfig, withShip bool) ([]TableCell, error) {
	if cfg.Trials <= 0 {
		return nil, errf("table: Trials must be positive, got %d", cfg.Trials)
	}
	if len(cfg.Ms) == 0 || len(cfg.RowsSet) == 0 {
		return nil, errf("table: Ms and RowsSet must be non-empty")
	}
	speeds := cfg.Speeds
	if !withShip || len(speeds) == 0 {
		speeds = []float64{0}
	}
	var out []TableCell
	for _, m := range cfg.Ms {
		for _, rows := range cfg.RowsSet {
			var cSum float64
			n := 0
			for trial := 0; trial < cfg.Trials; trial++ {
				speed := speeds[trial%len(speeds)]
				c, ok, err := tableTrial(cfg, rows, m, speed, withShip,
					cfg.Seed+int64(trial)*104729+int64(rows)*31+int64(m*1000))
				if err != nil {
					return nil, err
				}
				if ok {
					cSum += c
					n++
				}
			}
			cell := TableCell{M: m, Rows: rows}
			if n > 0 {
				cell.C = cSum / float64(n)
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// tableTrial runs one grid recording and evaluates the correlation over
// the per-node reports. Returns ok=false when too few nodes reported to
// evaluate at all (possible in quiet no-ship trials at high M).
func tableTrial(cfg TableConfig, rows int, m, speed float64, withShip bool, seed int64) (float64, bool, error) {
	field, err := buildSea(cfg.Hs, cfg.Tp, seed)
	if err != nil {
		return 0, false, err
	}
	model := sensor.Composite{field}
	grid := geo.GridSpec{Rows: rows, Cols: tableCols, Spacing: tableSpacing}
	// The travel line runs parallel to the grid columns just outside the
	// last column, so each row presents all five nodes on one side of it
	// — the paper's "5 nodes' data in each row". Both tables evaluate
	// against this line (Table I asks how false alarms would score under
	// the same geometry a real crossing uses).
	_, gmax := grid.Bounds()
	line := geo.NewLine(geo.Vec2{X: gmax.X + tableSpacing/2, Y: -200}, geo.Vec2{X: 0, Y: 1})
	var ship *wake.Ship
	if withShip {
		ship, err = wake.NewShip(line, speed, 12)
		if err != nil {
			return 0, false, err
		}
		ship.Time0 = tableArrive - (ship.ArrivalTime(grid.Center()) - ship.Time0)
		model = append(model, wake.Field{Ship: ship})
	}

	// Node-level: each node runs the detector at multiplier M. For
	// Table I the af requirement is minimal to force false-alarm reports;
	// for Table II it is the operating 0.4.
	dcfg := detect.DefaultConfig()
	dcfg.M = m
	if withShip {
		dcfg.AnomalyThreshold = 0.4
	} else {
		dcfg.AnomalyThreshold = 0.05
	}
	var reports []cluster.Report
	for i, pos := range grid.Positions() {
		buoy := sensor.NewBuoy(sensor.BuoyConfig{
			Anchor:      pos,
			DriftRadius: 2,
			Seed:        seed ^ int64(i)*7907,
		})
		sens, err := sensor.NewSensor(buoy, sensor.DefaultAccelConfig())
		if err != nil {
			return 0, false, err
		}
		det, err := detect.New(dcfg)
		if err != nil {
			return 0, false, err
		}
		samples := sens.Record(model, 0, tableDur)
		windows := det.ProcessSeries(0, sensor.ZSeries(samples))
		// Keep the node's highest-energy report (the paper's rule).
		bestE := math.Inf(-1)
		var best *detect.Report
		for _, ws := range windows {
			if !det.Detected(ws) {
				continue
			}
			if ws.Energy > bestE {
				bestE = ws.Energy
				r := det.ReportOf(ws)
				best = &r
			}
		}
		if best == nil {
			continue
		}
		row, _ := grid.RowCol(i)
		reports = append(reports, cluster.Report{
			Node:   i,
			Pos:    pos,
			Row:    row,
			Onset:  best.Onset,
			Energy: best.Energy,
		})
	}
	if len(reports) < 2 {
		return 0, false, nil
	}
	ccfg := cluster.DefaultConfig()
	ccfg.MinRows = rows
	res, err := cluster.EvaluateWithLine(reports, line, ccfg)
	if err != nil {
		return 0, false, err
	}
	return res.C, true, nil
}
