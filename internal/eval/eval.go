// Package eval regenerates every table and figure of the paper's
// evaluation (§V) plus the signal-processing figures of §III, from the
// synthetic substrates. Each experiment is a pure function of its
// parameters and a seed, so benches and the sidbench command produce
// identical numbers.
//
// The per-experiment index lives in DESIGN.md; measured-vs-paper notes in
// EXPERIMENTS.md.
package eval

import (
	"fmt"
	"math"

	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/ocean"
	"github.com/sid-wsn/sid/internal/sensor"
	"github.com/sid-wsn/sid/internal/wake"
)

// Scenario bundles the physical setting shared by the experiments: the
// ambient sea and an optional ship pass observed by one buoy.
type Scenario struct {
	// Hs, Tp parametrize the sea spectrum. The paper's deployment
	// (Fig. 5) shows z excursions of roughly ±200–300 counts, matching a
	// slight sea.
	Hs, Tp float64
	// Gamma selects a JONSWAP peak enhancement (> 1); 0 selects the
	// broader Pierson–Moskowitz shape.
	Gamma float64
	// ShipSpeed in m/s; 0 disables the ship.
	ShipSpeed float64
	// ShipDist is the buoy's perpendicular distance from the sailing line
	// (25 m is the paper's node deployment distance).
	ShipDist float64
	// WaveCoeff overrides the ship's wave-making coefficient when > 0.
	WaveCoeff float64
	// Drift enables the 2 m mooring drift.
	Drift bool
	// Seed drives all random streams.
	Seed int64
}

// DefaultScenario matches the paper's sea-trial conditions: a slight sea
// and a 10-knot fishing boat passing 25 m from the buoy.
func DefaultScenario() Scenario {
	return Scenario{
		Hs:        0.4,
		Tp:        6.0,
		Gamma:     3.3,
		ShipSpeed: geo.Knots(10),
		ShipDist:  25,
		Drift:     true,
	}
}

// Build materializes the scenario: a sensor on a buoy at the origin, the
// surface model, and (if a ship is configured) the ship, positioned so its
// wake front reaches the buoy at the requested arrival time.
func (sc Scenario) Build(arrival float64) (*sensor.Sensor, sensor.SurfaceModel, *wake.Ship, error) {
	var spec ocean.Spectrum
	var err error
	if sc.Gamma > 0 {
		spec, err = ocean.NewJONSWAP(sc.Hs, sc.Tp, sc.Gamma)
	} else {
		spec, err = ocean.NewPiersonMoskowitz(sc.Hs, sc.Tp)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	field, err := ocean.NewField(ocean.FieldConfig{Spectrum: spec, Seed: sc.Seed, BuoyRadius: 0.4})
	if err != nil {
		return nil, nil, nil, err
	}
	model := sensor.Composite{field}
	var ship *wake.Ship
	if sc.ShipSpeed > 0 {
		track := geo.NewLine(geo.Vec2{X: 0, Y: -sc.ShipDist}, geo.Vec2{X: 1, Y: 0})
		ship, err = wake.NewShip(track, sc.ShipSpeed, 12)
		if err != nil {
			return nil, nil, nil, err
		}
		if sc.WaveCoeff > 0 {
			ship.WaveCoeff = sc.WaveCoeff
		}
		ship.Time0 = arrival - (ship.ArrivalTime(geo.Vec2{}) - ship.Time0)
		model = append(model, wake.Field{Ship: ship})
	}
	drift := 0.0
	if sc.Drift {
		drift = 2
	}
	buoy := sensor.NewBuoy(sensor.BuoyConfig{DriftRadius: drift, Seed: sc.Seed ^ 0xb001})
	sens, err := sensor.NewSensor(buoy, sensor.DefaultAccelConfig())
	if err != nil {
		return nil, nil, nil, err
	}
	return sens, model, ship, nil
}

// Record builds the scenario and records dur seconds of samples starting
// at t = 0, with the wake front (if any) arriving at the given time.
func (sc Scenario) Record(dur, arrival float64) ([]sensor.Sample, *wake.Ship, error) {
	sens, model, ship, err := sc.Build(arrival)
	if err != nil {
		return nil, nil, err
	}
	return sens.Record(model, 0, dur), ship, nil
}

// seriesStats is a tiny helper shared by the figure generators.
type seriesStats struct {
	Mean, Std, Min, Max float64
}

func statsOf(xs []float64) seriesStats {
	if len(xs) == 0 {
		return seriesStats{}
	}
	var s, s2 float64
	min, max := xs[0], xs[0]
	for _, x := range xs {
		s += x
		s2 += x * x
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	n := float64(len(xs))
	mean := s / n
	variance := s2/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return seriesStats{Mean: mean, Std: math.Sqrt(variance), Min: min, Max: max}
}

func errf(format string, args ...interface{}) error { return fmt.Errorf("eval: "+format, args...) }

// buildSea constructs the standard evaluation sea: JONSWAP (γ = 3.3)
// with the buoy hull response, seeded deterministically.
func buildSea(hs, tp float64, seed int64) (*ocean.Field, error) {
	spec, err := ocean.NewJONSWAP(hs, tp, 3.3)
	if err != nil {
		return nil, err
	}
	return ocean.NewField(ocean.FieldConfig{Spectrum: spec, Seed: seed, BuoyRadius: 0.4})
}
