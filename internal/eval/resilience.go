package eval

import (
	"math"

	"github.com/sid-wsn/sid/internal/fault"
	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sid"
	"github.com/sid-wsn/sid/internal/wake"
	"github.com/sid-wsn/sid/internal/wsn"
)

// Resilience measures how the end-to-end detection pipeline degrades under
// radio loss and node failures, with and without the resilience layer
// (reliable per-hop transport + cluster-head failover). This is the
// experiment behind docs/RESILIENCE.md: the paper's evaluation assumes a
// healthy network; a harbor deployment gets storms, drained cells and
// drowned buoys instead.

// ResilienceConfig parametrizes the sweep.
type ResilienceConfig struct {
	// Grid is the deployment (6×6 at 25 m by default: big enough for the
	// four-node speed condition with margin).
	Grid geo.GridSpec
	// LossRates is the Bernoulli frame-loss sweep.
	LossRates []float64
	// FailFracs is the fraction of nodes crashed mid-collection (the sink
	// is never crashed — it is mains-powered and ashore).
	FailFracs []float64
	// Trials is the number of seeds per sweep point. The same seeds are
	// used for the resilient and fire-and-forget arms, so each comparison
	// is paired.
	Trials int
	// SpeedKn is the intruder speed in knots.
	SpeedKn float64
	// Seed drives everything.
	Seed int64
}

// DefaultResilienceConfig returns the sweep reported in RESILIENCE.md.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		Grid:      geo.GridSpec{Rows: 6, Cols: 6, Spacing: 25},
		LossRates: []float64{0, 0.15, 0.30},
		FailFracs: []float64{0, 0.15},
		Trials:    3,
		SpeedKn:   10,
		Seed:      1,
	}
}

// ResiliencePoint is one cell of the sweep: a (loss rate, failure
// fraction, transport mode) triple aggregated over trials.
type ResiliencePoint struct {
	LossRate float64
	FailFrac float64
	// Resilient is true for the reliable-transport + failover arm, false
	// for the paper's fire-and-forget protocol.
	Resilient bool
	Trials    int
	// Detected counts trials where the sink received ≥ 1 confirmation.
	Detected int
	// SpeedAvail counts trials where a confirmation carried a speed
	// estimate (the four-node condition survived the failures).
	SpeedAvail int
	// Failovers and Retransmissions aggregate protocol activity.
	Failovers       int
	Retransmissions int
	// DetectionRatio and SpeedRatio are Detected/Trials and
	// SpeedAvail/Trials.
	DetectionRatio, SpeedRatio float64
}

// Resilience runs the sweep: every (loss, failure) point twice — resilient
// and fire-and-forget — over the same per-trial seeds.
func Resilience(cfg ResilienceConfig) ([]ResiliencePoint, error) {
	if len(cfg.LossRates) == 0 || len(cfg.FailFracs) == 0 || cfg.Trials <= 0 {
		return nil, errf("Resilience: loss rates, failure fractions and trials must be non-empty/positive")
	}
	if cfg.Grid.Rows == 0 {
		cfg.Grid = DefaultResilienceConfig().Grid
	}
	var out []ResiliencePoint
	for _, loss := range cfg.LossRates {
		for _, frac := range cfg.FailFracs {
			for _, resilient := range []bool{false, true} {
				pt := ResiliencePoint{LossRate: loss, FailFrac: frac, Resilient: resilient, Trials: cfg.Trials}
				for trial := 0; trial < cfg.Trials; trial++ {
					seed := cfg.Seed + int64(trial)*7919 + int64(loss*1000)*13 + int64(frac*1000)*31
					res, err := resilienceTrial(cfg, loss, frac, resilient, seed)
					if err != nil {
						return nil, err
					}
					if res.detected {
						pt.Detected++
					}
					if res.speed {
						pt.SpeedAvail++
					}
					pt.Failovers += res.failovers
					pt.Retransmissions += res.retrans
				}
				pt.DetectionRatio = float64(pt.Detected) / float64(pt.Trials)
				pt.SpeedRatio = float64(pt.SpeedAvail) / float64(pt.Trials)
				out = append(out, pt)
			}
		}
	}
	return out, nil
}

type resilienceTrialResult struct {
	detected  bool
	speed     bool
	failovers int
	retrans   int
}

// resilienceTrial runs one full deployment: ship crossing at t = 150 s,
// the configured fraction of nodes crashing from t = 165 s (2 s apart,
// mid-collection, deterministic victims), the given Bernoulli loss rate.
func resilienceTrial(cfg ResilienceConfig, loss, frac float64, resilient bool, seed int64) (resilienceTrialResult, error) {
	rc := sid.DefaultConfig()
	rc.Grid = cfg.Grid
	rc.Seed = seed
	rc.Radio.LossProb = loss
	// The default radio's blind link-layer retries re-send whenever the
	// loss draw failed — sender-side knowledge a real fire-and-forget
	// radio cannot have. The sweep removes that simulation shortcut so
	// the two arms are physical: raw frames vs ACK-verified frames.
	rc.Radio.Retries = 0
	if resilient {
		rc.Radio.Reliable = wsn.DefaultReliableConfig()
		rc.Failover = sid.DefaultFailoverConfig()
	}
	if frac > 0 {
		rc.Faults = fault.CrashFraction(cfg.Grid.NumNodes(), frac, 165, 2, seed, int(rc.SinkID))
	}
	rt, err := sid.NewRuntime(rc)
	if err != nil {
		return resilienceTrialResult{}, err
	}
	ship, err := resilienceShip(cfg, 150)
	if err != nil {
		return resilienceTrialResult{}, err
	}
	rt.AddShip(ship)
	if err := rt.Run(450); err != nil {
		return resilienceTrialResult{}, err
	}
	res := resilienceTrialResult{
		failovers: rt.Failovers(),
		retrans:   rt.Network().Stats().Retransmissions,
	}
	for _, sr := range rt.SinkReports() {
		res.detected = true
		if sr.HasSpeed {
			res.speed = true
		}
	}
	return res, nil
}

// resilienceShip crosses the grid perpendicular to its rows, wake front
// reaching the center around tArrive.
func resilienceShip(cfg ResilienceConfig, tArrive float64) (*wake.Ship, error) {
	center := cfg.Grid.Center()
	track := geo.NewLine(geo.Vec2{X: center.X + cfg.Grid.Spacing/2, Y: -200}, geo.Vec2{X: 0, Y: 1})
	ship, err := wake.NewShip(track, geo.Knots(cfg.SpeedKn), 12)
	if err != nil {
		return nil, err
	}
	ship.Time0 = tArrive - (ship.ArrivalTime(center) - ship.Time0)
	return ship, nil
}

// ResilienceSummary condenses a sweep into the headline acceptance
// numbers: the resilient arm's worst detection-ratio drop from its
// lossless baseline, and the fire-and-forget arm's drop at the highest
// loss rate.
type ResilienceSummary struct {
	// ResilientBaseline and UnreliableBaseline are the lossless,
	// failure-free detection ratios per arm.
	ResilientBaseline, UnreliableBaseline float64
	// ResilientWorst and UnreliableWorst are each arm's lowest detection
	// ratio anywhere in the sweep.
	ResilientWorst, UnreliableWorst float64
}

// Summarize extracts the headline numbers from a sweep.
func Summarize(points []ResiliencePoint) ResilienceSummary {
	s := ResilienceSummary{ResilientWorst: math.Inf(1), UnreliableWorst: math.Inf(1)}
	for _, p := range points {
		if p.LossRate == 0 && p.FailFrac == 0 {
			if p.Resilient {
				s.ResilientBaseline = p.DetectionRatio
			} else {
				s.UnreliableBaseline = p.DetectionRatio
			}
		}
		if p.Resilient {
			s.ResilientWorst = math.Min(s.ResilientWorst, p.DetectionRatio)
		} else {
			s.UnreliableWorst = math.Min(s.UnreliableWorst, p.DetectionRatio)
		}
	}
	return s
}
