package eval

import (
	"math"

	"github.com/sid-wsn/sid/internal/detect"
	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sensor"
	"github.com/sid-wsn/sid/internal/speed"
	"github.com/sid-wsn/sid/internal/wake"
)

// Fig12Row is one bar group of Fig. 12: actual vs estimated ship speed.
type Fig12Row struct {
	// ActualKn is the true ship speed in knots.
	ActualKn float64
	// MinKn, MeanKn, MaxKn summarize the estimates across runs.
	MinKn, MeanKn, MaxKn float64
	// WorstRelErr is the largest |estimate−actual|/actual observed.
	WorstRelErr float64
	// Runs is the number of successful estimates.
	Runs int
	// Failures counts runs where no estimate could be formed.
	Failures int
}

// Fig12Config parametrizes the speed-estimation evaluation: four nodes in
// the Fig. 10 layout (two vertical pairs straddling the sailing line at
// deployment distance D = 25 m), the two speed levels of the paper, and a
// sweep of crossing angles.
type Fig12Config struct {
	// SpeedsKn are the actual ship speeds in knots (10 and 16).
	SpeedsKn []float64
	// AnglesDeg are the crossing angles α between the sailing line and
	// the row axis.
	AnglesDeg []float64
	// RunsPerAngle repeats each angle with different seeds.
	RunsPerAngle int
	// Hs, Tp set the ambient sea.
	Hs, Tp float64
	// SyncRMS is the clock residual applied to each node's timestamps
	// (seconds); models post-sync WSN clocks.
	SyncRMS float64
	// Seed drives all streams.
	Seed int64
}

// DefaultFig12Config matches the paper's setup.
func DefaultFig12Config() Fig12Config {
	return Fig12Config{
		SpeedsKn:     []float64{10, 16},
		AnglesDeg:    []float64{0, 10, 20, 30},
		RunsPerAngle: 5,
		Hs:           0.4,
		Tp:           6.0,
		SyncRMS:      0.005,
		Seed:         1,
	}
}

// Fig12 runs the four-node speed estimation over crossing angles and
// seeds and summarizes the estimates per actual speed.
func Fig12(cfg Fig12Config) ([]Fig12Row, error) {
	if len(cfg.SpeedsKn) == 0 || len(cfg.AnglesDeg) == 0 || cfg.RunsPerAngle <= 0 {
		return nil, errf("Fig12: speeds, angles and runs must be non-empty/positive")
	}
	var out []Fig12Row
	for _, kn := range cfg.SpeedsKn {
		row := Fig12Row{ActualKn: kn, MinKn: math.Inf(1), MaxKn: math.Inf(-1)}
		var sum float64
		for _, angle := range cfg.AnglesDeg {
			for run := 0; run < cfg.RunsPerAngle; run++ {
				seed := cfg.Seed + int64(run)*6151 + int64(angle*100+kn*10)
				estKn, ok, err := fig12Run(cfg, kn, angle, seed)
				if err != nil {
					return nil, errf("Fig12: speed %g kn, angle %g°, run %d: %v", kn, angle, run, err)
				}
				if !ok {
					row.Failures++
					continue
				}
				row.Runs++
				sum += estKn
				if estKn < row.MinKn {
					row.MinKn = estKn
				}
				if estKn > row.MaxKn {
					row.MaxKn = estKn
				}
				if rel := math.Abs(estKn-kn) / kn; rel > row.WorstRelErr {
					row.WorstRelErr = rel
				}
			}
		}
		if row.Runs > 0 {
			row.MeanKn = sum / float64(row.Runs)
		}
		out = append(out, row)
	}
	return out, nil
}

// fig12Run simulates one crossing observed by the four-node configuration
// and returns the estimated speed in knots. ok=false means the run produced
// no usable estimate (a legitimate outcome Fig. 12 counts as a failure); a
// non-nil error means the simulation itself could not be built and must
// abort the whole evaluation rather than masquerade as a failed estimate.
func fig12Run(cfg Fig12Config, actualKn, angleDeg float64, seed int64) (float64, bool, error) {
	const (
		d       = 25.0 // deployment distance
		dur     = 240.0
		arrival = 140.0
	)
	v := geo.Knots(actualKn)
	phi := geo.Deg(angleDeg)
	// Fig. 10 layout: pair i above the line, pair j below, both pairs
	// vertical (+Y) with separation D. The sailing line passes between
	// them at angle phi to the X axis.
	positions := []geo.Vec2{
		{X: 0, Y: 30},       // Si
		{X: 0, Y: 30 + d},   // S'i
		{X: 60, Y: -30 - d}, // Sj
		{X: 60, Y: -30},     // S'j
	}
	track := geo.NewLine(geo.Vec2{X: 0, Y: 0}, geo.Vec2{X: math.Cos(phi), Y: math.Sin(phi)})
	ship, err := wake.NewShip(track, v, 12)
	if err != nil {
		return 0, false, err
	}
	// Time the front to reach Si around the arrival mark.
	ship.Time0 = arrival - (ship.ArrivalTime(positions[0]) - ship.Time0)

	field, err := buildSea(cfg.Hs, cfg.Tp, seed)
	if err != nil {
		return 0, false, err
	}
	model := sensor.Composite{field, wake.Field{Ship: ship}}

	clockRNG := newClockRNG(seed, cfg.SyncRMS)
	onsets := make([]float64, len(positions))
	for i, pos := range positions {
		buoy := sensor.NewBuoy(sensor.BuoyConfig{Anchor: pos, DriftRadius: 2, Seed: seed ^ int64(i)*6131})
		sens, err := sensor.NewSensor(buoy, sensor.DefaultAccelConfig())
		if err != nil {
			return 0, false, err
		}
		dcfg := detect.DefaultConfig()
		dcfg.AnomalyThreshold = 0.5
		det, err := detect.New(dcfg)
		if err != nil {
			return 0, false, err
		}
		samples := sens.Record(model, 0, dur)
		windows := det.ProcessSeries(0, sensor.ZSeries(samples))
		// The paper records "the reports which have the highest detected
		// energy"; the wake is the strongest event, but trailing noise can
		// come within a whisker of it, so take the earliest onset among
		// windows within 70% of the maximum energy.
		maxE := math.Inf(-1)
		for _, ws := range windows {
			if det.Detected(ws) && ws.Energy > maxE {
				maxE = ws.Energy
			}
		}
		onset := math.NaN()
		for _, ws := range windows {
			if !det.Detected(ws) || math.IsNaN(ws.Onset) || ws.Energy < 0.7*maxE {
				continue
			}
			if math.IsNaN(onset) || ws.Onset < onset {
				onset = ws.Onset
			}
		}
		if math.IsNaN(onset) {
			return 0, false, nil // node saw no wake: no estimate
		}
		onsets[i] = onset + clockRNG(i)
	}
	// Cross-node sanity: one wake sweep crosses the four-node block in
	// well under half a minute at any plausible speed; onsets farther
	// apart mix different events.
	minO, maxO := onsets[0], onsets[0]
	for _, o := range onsets[1:] {
		minO = math.Min(minO, o)
		maxO = math.Max(maxO, o)
	}
	if maxO-minO > 60 {
		return 0, false, nil // onsets mix different events: no estimate
	}
	est, err := speed.Estimate4(onsets[0], onsets[1], onsets[2], onsets[3], d)
	if err != nil {
		return 0, false, nil // degenerate timestamps: no estimate
	}
	// Consistency gate: the two pair estimates measure the same ship; a
	// gross disagreement means a node's onset was corrupted (a false
	// alarm out-shouted the wake) and the configuration is unusable —
	// the cluster head would wait for better data.
	if finiteSpeed(est.SpeedI) && finiteSpeed(est.SpeedJ) {
		hi, lo := est.SpeedI, est.SpeedJ
		if lo > hi {
			hi, lo = lo, hi
		}
		if lo <= 0 || hi/lo > 2 {
			return 0, false, nil // inconsistent pair estimates: no estimate
		}
	}
	kn := geo.ToKnots(est.Speed)
	// Plausibility gate: harbor intruders move at a few to a few tens of
	// knots; an estimate far outside means the onsets mixed two different
	// events (noise and wake) and the configuration is unusable.
	if kn < 3 || kn > 30 {
		return 0, false, nil // implausible estimate: no estimate
	}
	return kn, true, nil
}

func finiteSpeed(v float64) bool { return !math.IsInf(v, 0) && !math.IsNaN(v) }

// newClockRNG returns a deterministic per-node clock residual generator.
func newClockRNG(seed int64, rms float64) func(i int) float64 {
	return func(i int) float64 {
		// Cheap splitmix-style hash onto a symmetric residual.
		x := uint64(seed) + uint64(i)*0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		u := float64(x%2000000)/1000000 - 1 // uniform in [-1, 1)
		return u * rms * math.Sqrt(3)       // scaled so the std equals rms
	}
}
