package eval

import (
	"math"

	"github.com/sid-wsn/sid/internal/detect"
	"github.com/sid-wsn/sid/internal/dsp"
	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sensor"
)

// Fig5Result reproduces Fig. 5: 250 s of three-axis ocean-wave measurement
// with no ship. The paper's plot shows x/y oscillating around 0 and z
// around ~1000 counts (1 g).
type Fig5Result struct {
	Duration float64
	X, Y, Z  seriesStats
	// ZSeries is the z channel decimated to 1 Hz for plotting.
	ZSeries []float64
}

// Fig5 records the quiet sea and summarizes the three axes.
func Fig5(sc Scenario) (*Fig5Result, error) {
	sc.ShipSpeed = 0
	const dur = 250.0
	samples, _, err := sc.Record(dur, 0)
	if err != nil {
		return nil, err
	}
	z := sensor.ZSeries(samples)
	dec, err := dsp.Decimate(z, 50, 50)
	if err != nil {
		return nil, err
	}
	return &Fig5Result{
		Duration: dur,
		X:        statsOf(sensor.XSeries(samples)),
		Y:        statsOf(sensor.YSeries(samples)),
		Z:        statsOf(z),
		ZSeries:  dec,
	}, nil
}

// Fig6Result reproduces Fig. 6: 2048-point STFT spectra (40.96 s frames)
// of segments without and with ship waves, aggregated over trials (one
// 41 s frame of a random sea is itself noisy). The paper's observation:
// the no-ship spectrum has "a high, single peak concentration" while the
// ship spectrum "has multiple peaks and wide crests".
type Fig6Result struct {
	// Trials is the number of independent recordings aggregated.
	Trials int
	// MeanNoShipPeaks and MeanShipPeaks are the average significant peak
	// counts below 2 Hz (smoothed, relative threshold 30%).
	MeanNoShipPeaks, MeanShipPeaks float64
	// WakeBandFracShip / WakeBandFracQuiet are the fractions of trials in
	// which the frame's DOMINANT peak falls in the wake band — with the
	// ship the wake line dominates the spectrum; without it the dominant
	// peak stays at the sea's own frequencies.
	WakeBandFracShip, WakeBandFracQuiet float64
	// MeanShipWakeBandEnergyRatio is the mean ratio of wake-band energy
	// between the ship frame and the quiet frame.
	MeanShipWakeBandEnergyRatio float64
	// WakeFreq is the ship's predicted divergent-wave frequency (Hz).
	WakeFreq float64
}

// wake band tolerance around the predicted divergent-wave frequency; the
// short packet's Gaussian envelope widens the line upward.
const (
	wakeBandLo = 0.02
	wakeBandHi = 0.12
)

// Fig6 aggregates STFT peak structure over trials.
func Fig6(sc Scenario) (*Fig6Result, error) {
	return Fig6N(sc, 10)
}

// Fig6N runs the Fig. 6 analysis over the given number of trials.
func Fig6N(sc Scenario, trials int) (*Fig6Result, error) {
	if trials <= 0 {
		return nil, errf("Fig6: trials must be positive, got %d", trials)
	}
	if sc.ShipSpeed <= 0 {
		return nil, errf("Fig6 needs a ship in the scenario")
	}
	res := &Fig6Result{Trials: trials}
	var ratioSum float64
	for i := 0; i < trials; i++ {
		tsc := sc
		tsc.Seed = sc.Seed + int64(i)*2693
		tr, err := fig6Trial(tsc)
		if err != nil {
			return nil, err
		}
		res.MeanNoShipPeaks += float64(tr.quietPeaks)
		res.MeanShipPeaks += float64(tr.shipPeaks)
		if tr.wakeInShip {
			res.WakeBandFracShip++
		}
		if tr.wakeInQuiet {
			res.WakeBandFracQuiet++
		}
		ratioSum += tr.wakeBandRatio
		res.WakeFreq = tr.wakeFreq
	}
	n := float64(trials)
	res.MeanNoShipPeaks /= n
	res.MeanShipPeaks /= n
	res.WakeBandFracShip /= n
	res.WakeBandFracQuiet /= n
	res.MeanShipWakeBandEnergyRatio = ratioSum / n
	return res, nil
}

type fig6TrialResult struct {
	quietPeaks, shipPeaks   int
	wakeInQuiet, wakeInShip bool
	wakeBandRatio           float64
	wakeFreq                float64
}

func fig6Trial(sc Scenario) (fig6TrialResult, error) {
	const (
		dur     = 400.0
		arrival = 300.0
		winSize = 2048 // 40.96 s at 50 Hz, as in the paper
	)
	samples, ship, err := sc.Record(dur, arrival)
	if err != nil {
		return fig6TrialResult{}, err
	}
	z := sensor.ZSeries(samples)
	dsp.Detrend(z)
	cfg := dsp.STFTConfig{WindowSize: winSize, HopSize: winSize / 4, Window: dsp.Hann, SampleRate: 50}
	sg, err := dsp.STFT(z, cfg)
	if err != nil {
		return fig6TrialResult{}, err
	}
	if len(sg.Frames) == 0 {
		return fig6TrialResult{}, errf("Fig6: no STFT frames")
	}
	// Pick the frame whose center is farthest before the arrival, and the
	// frame containing the arrival.
	var quiet, shipFrame *dsp.Frame
	for i := range sg.Frames {
		f := &sg.Frames[i]
		if f.Time < arrival-float64(winSize)/100 && quiet == nil {
			quiet = f
		}
		if f.Time >= arrival && f.Time < arrival+float64(winSize)/100 && shipFrame == nil {
			shipFrame = f
		}
	}
	if quiet == nil || shipFrame == nil {
		return fig6TrialResult{}, errf("Fig6: could not locate quiet/ship frames")
	}
	// Restrict analysis to the sub-2 Hz band where the wave energy lives.
	cut := dsp.FreqBin(2.0, winSize, 50)
	freqs := sg.Freqs[:cut]
	// Smooth the single-realization periodograms before reading peaks,
	// as the eye does on the paper's plots.
	qPower := dsp.SmoothSpectrum(quiet.Power[:cut], 2)
	sPower := dsp.SmoothSpectrum(shipFrame.Power[:cut], 2)
	qPeaks := dsp.FindPeaks(qPower, freqs, 0.30, 5)
	sPeaks := dsp.FindPeaks(sPower, freqs, 0.30, 5)
	wf := ship.WakeFreq()
	inBand := func(peaks []dsp.Peak) bool {
		return len(peaks) > 0 &&
			peaks[0].Freq >= wf-wakeBandLo && peaks[0].Freq <= wf+wakeBandHi
	}
	bandEnergy := func(power []float64) float64 {
		var e float64
		for k, f := range freqs {
			if f >= wf-wakeBandLo && f <= wf+wakeBandHi {
				e += power[k]
			}
		}
		return e
	}
	tr := fig6TrialResult{
		quietPeaks:  len(qPeaks),
		shipPeaks:   len(sPeaks),
		wakeInQuiet: inBand(qPeaks),
		wakeInShip:  inBand(sPeaks),
		wakeFreq:    wf,
	}
	if qe := bandEnergy(qPower); qe > 0 {
		tr.wakeBandRatio = bandEnergy(sPower) / qe
	}
	return tr, nil
}

// Fig7Result reproduces Fig. 7: the Morlet wavelet scalogram of a ship
// passage. The paper: "the ship waves mainly focus on the low frequency
// spectrum".
type Fig7Result struct {
	// LowBandFractionDuring is the fraction of scalogram power below 1 Hz
	// in the passage window.
	LowBandFractionDuring float64
	// BurstRatio is the scalogram power at the passage relative to a
	// quiet moment (time localization of the wake).
	BurstRatio float64
	// PeakFreq is the frequency row with maximum power during the passage.
	PeakFreq float64
}

// Fig7 runs the CWT over a recording containing one ship pass.
func Fig7(sc Scenario) (*Fig7Result, error) {
	const (
		dur     = 200.0
		arrival = 120.0
	)
	if sc.ShipSpeed <= 0 {
		return nil, errf("Fig7 needs a ship in the scenario")
	}
	samples, ship, err := sc.Record(dur, arrival)
	if err != nil {
		return nil, err
	}
	z := sensor.ZSeries(samples)
	dsp.Detrend(z)
	m, err := dsp.NewMorletCWT(50)
	if err != nil {
		return nil, err
	}
	freqs, err := dsp.LogFreqs(0.05, 5, 40)
	if err != nil {
		return nil, err
	}
	sg, err := m.Transform(z, freqs)
	if err != nil {
		return nil, err
	}
	// Average the time-slice power over the passage vs a quiet stretch.
	passage := ship.SignalAt(geo.Vec2{}).Arrival
	during := avgSlicePower(sg, passage, passage+8)
	before := avgSlicePower(sg, 30, 60)
	res := &Fig7Result{
		LowBandFractionDuring: lowBandFractionWindow(sg, passage, passage+8, 1.0),
		PeakFreq:              peakRowFreq(sg, passage, passage+8),
	}
	if before > 0 {
		res.BurstRatio = during / before
	}
	return res, nil
}

func avgSlicePower(sg *dsp.Scalogram, t0, t1 float64) float64 {
	n0, n1 := int(t0*sg.SampleRate), int(t1*sg.SampleRate)
	var s float64
	cnt := 0
	for n := n0; n < n1; n++ {
		s += sg.TimeSlicePower(n)
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return s / float64(cnt)
}

func lowBandFractionWindow(sg *dsp.Scalogram, t0, t1, cutoff float64) float64 {
	n0, n1 := int(t0*sg.SampleRate), int(t1*sg.SampleRate)
	var low, total float64
	for i, f := range sg.Freqs {
		var rowSum float64
		row := sg.Power[i]
		for n := n0; n < n1 && n < len(row); n++ {
			if n >= 0 {
				rowSum += row[n]
			}
		}
		total += rowSum
		if f < cutoff {
			low += rowSum
		}
	}
	if total == 0 {
		return 0
	}
	return low / total
}

func peakRowFreq(sg *dsp.Scalogram, t0, t1 float64) float64 {
	n0, n1 := int(t0*sg.SampleRate), int(t1*sg.SampleRate)
	best, bestP := 0, 0.0
	for i := range sg.Freqs {
		var rowSum float64
		row := sg.Power[i]
		for n := n0; n < n1 && n < len(row); n++ {
			if n >= 0 {
				rowSum += row[n]
			}
		}
		if rowSum > bestP {
			best, bestP = i, rowSum
		}
	}
	return sg.Freqs[best]
}

// Fig8Result reproduces Fig. 8: the raw accelerometer signal vs the 1 Hz
// low-passed signal over a 400 s recording containing a ship pass.
type Fig8Result struct {
	RawStd, FilteredStd float64
	// HighBandPowerRaw / HighBandPowerFiltered integrate the >1 Hz PSD;
	// the filter must remove essentially all of it.
	HighBandPowerRaw, HighBandPowerFiltered float64
	// DisturbanceRatio is the filtered signal's peak excursion during the
	// wake over the quiet background std — the visual content of Fig. 8b.
	DisturbanceRatio float64
}

// Fig8 low-passes a recording with a ship pass and quantifies the effect.
func Fig8(sc Scenario) (*Fig8Result, error) {
	const (
		dur     = 400.0
		arrival = 250.0
	)
	if sc.ShipSpeed <= 0 {
		return nil, errf("Fig8 needs a ship in the scenario")
	}
	samples, _, err := sc.Record(dur, arrival)
	if err != nil {
		return nil, err
	}
	z := sensor.ZSeries(samples)
	dsp.Detrend(z)
	lp, err := dsp.LowPassFIR(1.0, 50, detect.DefaultConfig().FilterTaps, dsp.Hamming)
	if err != nil {
		return nil, err
	}
	filtered := lp.Apply(z)
	rawPSD, err := dsp.Welch(z, dsp.WelchConfig{SegmentSize: 1024, SampleRate: 50})
	if err != nil {
		return nil, err
	}
	filtPSD, err := dsp.Welch(filtered, dsp.WelchConfig{SegmentSize: 1024, SampleRate: 50})
	if err != nil {
		return nil, err
	}
	// Quiet background: 50–200 s. Wake window: arrival ± 10 s.
	quiet := filtered[50*50 : 200*50]
	wakeWin := filtered[int((arrival-10)*50):int((arrival+10)*50)]
	var peak float64
	for _, v := range wakeWin {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	qs := statsOf(quiet)
	res := &Fig8Result{
		RawStd:                statsOf(z).Std,
		FilteredStd:           statsOf(filtered).Std,
		HighBandPowerRaw:      rawPSD.BandPower(2, 25),
		HighBandPowerFiltered: filtPSD.BandPower(2, 25),
	}
	if qs.Std > 0 {
		res.DisturbanceRatio = peak / qs.Std
	}
	return res, nil
}
