package eval

import (
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
)

func TestAdversarialShape(t *testing.T) {
	cfg := AdversarialConfig{
		Grid:     geo.GridSpec{Rows: 4, Cols: 5, Spacing: 25},
		ByzFracs: []float64{0, 0.2},
		Trials:   1,
		SpeedKn:  10,
		Seed:     7,
	}
	pts, err := Adversarial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two fractions, both arms each.
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	if pts[0].Defended || !pts[1].Defended {
		t.Errorf("arm order = %v, %v; want undefended then defended", pts[0].Defended, pts[1].Defended)
	}
	for _, p := range pts {
		if p.Trials != 1 {
			t.Errorf("trials = %d", p.Trials)
		}
		if p.ByzFrac == 0 && p.Injected != 0 {
			t.Errorf("unattacked cell injected %d reports", p.Injected)
		}
		if p.ByzFrac > 0 && p.Injected == 0 {
			t.Errorf("attacked cell (frac %g, defended %v) injected nothing", p.ByzFrac, p.Defended)
		}
		if !p.Defended && (p.Rejected != 0 || p.Quarantined != 0) {
			t.Errorf("undefended cell rejected %d / quarantined %d", p.Rejected, p.Quarantined)
		}
	}
	// The unattacked crossing must be detected by both arms.
	if pts[0].DetectionRatio != 1 || pts[1].DetectionRatio != 1 {
		t.Errorf("honest detection = %v / %v, want 1 / 1", pts[0].DetectionRatio, pts[1].DetectionRatio)
	}
	s := SummarizeAdversarial(pts)
	if s.HonestDetection != 1 {
		t.Errorf("summary honest detection = %v", s.HonestDetection)
	}
	if s.WorstFrac != 0.2 {
		t.Errorf("summary worst frac = %v", s.WorstFrac)
	}
}

func TestAdversarialValidation(t *testing.T) {
	if _, err := Adversarial(AdversarialConfig{}); err == nil {
		t.Error("empty config should error")
	}
}
