package eval

import (
	"math"

	"github.com/sid-wsn/sid/internal/detect"
	"github.com/sid-wsn/sid/internal/geo"
	"github.com/sid-wsn/sid/internal/sensor"
	"github.com/sid-wsn/sid/internal/wake"
)

// Fig11Point is one curve point of Fig. 11: the successful detection ratio
// of a single node at threshold multiplier M and anomaly-frequency
// requirement AF.
type Fig11Point struct {
	M     float64
	AF    float64
	Ratio float64
}

// Fig11Config parametrizes the node-level evaluation.
type Fig11Config struct {
	// Ms are the threshold multipliers (the paper plots 1, 1.5, 2, 2.5, 3).
	Ms []float64
	// AFs are the anomaly-frequency requirements (the paper's x axis runs
	// 40–100%).
	AFs []float64
	// Trials per (M, AF) point.
	Trials int
	// PassesPerTrial is the number of ship passes in each 400 s trial
	// (the paper's sea trials ran many passes; the precision-style ratio
	// depends on the traffic mix, so it is explicit here).
	PassesPerTrial int
	// Scenario is the per-trial setting (ship at D = 25 m).
	Scenario Scenario
}

// DefaultFig11Config returns the paper's grid.
func DefaultFig11Config() Fig11Config {
	sc := DefaultScenario()
	// Calibrated so the D = 25 m wake saturates the anomaly frequency the
	// way the paper's sea trials did (their af axis reaches 100%): a
	// moderately calmer sea and the wake of a hard-planing boat.
	sc.Hs = 0.3
	sc.WaveCoeff = 2.5
	return Fig11Config{
		Ms:             []float64{1, 1.5, 2, 2.5, 3},
		AFs:            []float64{0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		Trials:         20,
		PassesPerTrial: 5,
		Scenario:       sc,
	}
}

// Fig11 measures the successful detection ratio of one node as a function
// of the anomaly frequency, for several M.
//
// Operational definition (the paper gives the plot but not the success
// criterion; see DESIGN.md): each trial is a 400 s recording containing
// one ship pass at D = 25 m. The node's detection events (report windows
// whose af reaches the x-axis value, merged within 15 s) are classified
// against the known wake window; the successful detection ratio at af = x
// is the fraction of all detection events at that af that are genuine
// ship detections. Higher af and higher M suppress the (bursty,
// wave-group-driven) false alarms while the strong D = 25 m wake keeps
// reporting at high af — reproducing the rising curves of Fig. 11,
// including M = 1 staying lowest (its threshold lets wave groups through
// even at af = 100%).
func Fig11(cfg Fig11Config) ([]Fig11Point, error) {
	if cfg.Trials <= 0 {
		return nil, errf("Fig11: Trials must be positive, got %d", cfg.Trials)
	}
	if len(cfg.Ms) == 0 || len(cfg.AFs) == 0 {
		return nil, errf("Fig11: Ms and AFs must be non-empty")
	}
	const dur = 400.0
	if cfg.PassesPerTrial <= 0 {
		cfg.PassesPerTrial = 1
	}
	// Spread the passes over the trial, leaving the warmup head quiet.
	arrivals := make([]float64, cfg.PassesPerTrial)
	for i := range arrivals {
		arrivals[i] = 90 + float64(i)*(dur-130)/float64(cfg.PassesPerTrial)
	}
	// wake/false event counts per (M, af) point across all trials.
	wakeN := make([][]int, len(cfg.Ms))
	falseN := make([][]int, len(cfg.Ms))
	for i := range wakeN {
		wakeN[i] = make([]int, len(cfg.AFs))
		falseN[i] = make([]int, len(cfg.AFs))
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		sc := cfg.Scenario
		sc.Seed = sc.Seed + int64(trial)*7919
		z, err := recordMultiPass(sc, dur, arrivals)
		if err != nil {
			return nil, err
		}
		for mi, m := range cfg.Ms {
			dcfg := detect.DefaultConfig()
			dcfg.M = m
			// Δt = 1 s: short enough that a wake crest fills whole windows
			// and af can reach 100% (see DESIGN.md on the af axis).
			dcfg.AnomalyWindow = 50
			dcfg.AnomalyHop = 25
			dcfg.AnomalyThreshold = 0.01 // windows filtered per-AF below
			det, err := detect.New(dcfg)
			if err != nil {
				return nil, err
			}
			windows := det.ProcessSeries(0, z)
			for ai, af := range cfg.AFs {
				w, f := countEvents(windows, af, arrivals)
				wakeN[mi][ai] += w
				falseN[mi][ai] += f
			}
		}
	}
	var out []Fig11Point
	for mi, m := range cfg.Ms {
		for ai, af := range cfg.AFs {
			p := Fig11Point{M: m, AF: af}
			if total := wakeN[mi][ai] + falseN[mi][ai]; total > 0 {
				p.Ratio = float64(wakeN[mi][ai]) / float64(total)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// recordMultiPass records a trial containing one ship pass per arrival
// time, all at the scenario's distance and speed.
func recordMultiPass(sc Scenario, dur float64, arrivals []float64) ([]float64, error) {
	field, err := buildSea(sc.Hs, sc.Tp, sc.Seed)
	if err != nil {
		return nil, err
	}
	model := sensor.Composite{field}
	for _, arr := range arrivals {
		track := geo.NewLine(geo.Vec2{X: 0, Y: -sc.ShipDist}, geo.Vec2{X: 1, Y: 0})
		ship, err := wake.NewShip(track, sc.ShipSpeed, 12)
		if err != nil {
			return nil, err
		}
		if sc.WaveCoeff > 0 {
			ship.WaveCoeff = sc.WaveCoeff
		}
		ship.Time0 = arr - (ship.ArrivalTime(geo.Vec2{}) - ship.Time0)
		model = append(model, wake.Field{Ship: ship})
	}
	drift := 0.0
	if sc.Drift {
		drift = 2
	}
	buoy := sensor.NewBuoy(sensor.BuoyConfig{DriftRadius: drift, Seed: sc.Seed ^ 0xb001})
	sens, err := sensor.NewSensor(buoy, sensor.DefaultAccelConfig())
	if err != nil {
		return nil, err
	}
	return sensor.ZSeries(sens.Record(model, 0, dur)), nil
}

// countEvents classifies one trial's windows at the given af value into
// genuine wake detections (per pass) and false-alarm events (merged
// within 15 s).
func countEvents(windows []detect.WindowStat, afReq float64, arrivals []float64) (wake, falseEvents int) {
	const (
		wakeLo   = -5.0 // tolerance before the nominal front arrival
		wakeHi   = 25.0 // wake train plus spread
		eventGap = 15.0
	)
	sawWake := make([]bool, len(arrivals))
	lastFalse := math.Inf(-1)
	for _, ws := range windows {
		if ws.AnomalyFreq < afReq || math.IsNaN(ws.Onset) {
			continue
		}
		inWake := false
		for i, arr := range arrivals {
			if ws.Onset >= arr+wakeLo && ws.Onset <= arr+wakeHi {
				sawWake[i] = true
				inWake = true
				break
			}
		}
		if inWake {
			continue
		}
		// Merge consecutive out-of-wake windows into events.
		if ws.Onset-lastFalse > eventGap {
			falseEvents++
		}
		lastFalse = ws.Onset
	}
	for _, s := range sawWake {
		if s {
			wake++
		}
	}
	return wake, falseEvents
}
