package eval

import (
	"testing"

	"github.com/sid-wsn/sid/internal/geo"
)

func TestResilienceShape(t *testing.T) {
	cfg := ResilienceConfig{
		Grid:      geo.GridSpec{Rows: 4, Cols: 4, Spacing: 25},
		LossRates: []float64{0},
		FailFracs: []float64{0},
		Trials:    1,
		SpeedKn:   10,
		Seed:      3,
	}
	pts, err := Resilience(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One sweep cell, both arms.
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	if pts[0].Resilient || !pts[1].Resilient {
		t.Errorf("arm order = %v, %v; want fire+forget then resilient", pts[0].Resilient, pts[1].Resilient)
	}
	for _, p := range pts {
		if p.Trials != 1 {
			t.Errorf("trials = %d", p.Trials)
		}
		if p.DetectionRatio < 0 || p.DetectionRatio > 1 || p.SpeedRatio > p.DetectionRatio {
			t.Errorf("ratios out of range: detect=%v speed=%v", p.DetectionRatio, p.SpeedRatio)
		}
	}
	// A lossless, failure-free crossing must be detected by both arms.
	if pts[0].DetectionRatio != 1 || pts[1].DetectionRatio != 1 {
		t.Errorf("lossless detection = %v / %v, want 1 / 1", pts[0].DetectionRatio, pts[1].DetectionRatio)
	}
	s := Summarize(pts)
	if s.ResilientBaseline != 1 || s.UnreliableBaseline != 1 {
		t.Errorf("summary baselines = %+v", s)
	}
}

func TestResilienceValidation(t *testing.T) {
	if _, err := Resilience(ResilienceConfig{}); err == nil {
		t.Error("empty config should error")
	}
}
